(* Tests for the broadcast primitives, including Byzantine-sender attacks. *)

open Sintra

let deliveries_of (got : string option array) : string list =
  Array.to_list got |> List.filter_map (fun x -> x)

let make_rbc c pid sender got =
  Array.init (Cluster.n c) (fun i ->
    Reliable_broadcast.create (Cluster.runtime c i) ~pid ~sender
      ~on_deliver:(fun m -> got.(i) <- Some m))

let suite = [
  Alcotest.test_case "reliable: honest sender delivers everywhere" `Quick (fun () ->
    let c = Util.cluster ~seed:"rbc1" () in
    let got = Array.make 4 None in
    let insts = make_rbc c "r.0" 0 got in
    Cluster.inject c 0 (fun () -> Reliable_broadcast.send insts.(0) "payload");
    ignore (Cluster.run c);
    Alcotest.(check (list string)) "all four" [ "payload"; "payload"; "payload"; "payload" ]
      (deliveries_of got));

  Alcotest.test_case "reliable: empty and large payloads" `Quick (fun () ->
    List.iteri
      (fun k payload ->
        let c = Util.cluster ~seed:(Printf.sprintf "rbc-size%d" k) () in
        let got = Array.make 4 None in
        let insts = make_rbc c "r.s" 1 got in
        Cluster.inject c 1 (fun () -> Reliable_broadcast.send insts.(1) payload);
        ignore (Cluster.run c);
        Alcotest.(check int) "count" 4 (List.length (deliveries_of got));
        Util.check_all_equal "payload" (deliveries_of got))
      [ ""; String.make 20_000 'x' ]);

  Alcotest.test_case "reliable: non-sender cannot send" `Quick (fun () ->
    let c = Util.cluster ~seed:"rbc2" () in
    let got = Array.make 4 None in
    let insts = make_rbc c "r.1" 2 got in
    Alcotest.check_raises "wrong sender"
      (Invalid_argument "Reliable_broadcast.send: not the sender")
      (fun () -> Reliable_broadcast.send insts.(0) "x"));

  Alcotest.test_case "reliable: agreement under an equivocating sender" `Quick (fun () ->
    (* Byzantine party 0 sends payload A to parties 1,2 and payload B to 3,
       then echoes whatever helps; honest parties must never deliver
       different payloads. *)
    let c = Util.cluster ~seed:"rbc3" () in
    let got = Array.make 4 None in
    let _insts =
      Array.init 3 (fun k ->
        let i = k + 1 in
        Reliable_broadcast.create (Cluster.runtime c i) ~pid:"r.eq" ~sender:0
          ~on_deliver:(fun m -> got.(i) <- Some m))
    in
    Cluster.inject c 0 (fun () ->
      let rt = Cluster.runtime c 0 in
      Runtime.send rt ~dst:1 ~pid:"r.eq"
        (Reliable_broadcast.encode ~tag:Reliable_broadcast.tag_send "A");
      Runtime.send rt ~dst:2 ~pid:"r.eq"
        (Reliable_broadcast.encode ~tag:Reliable_broadcast.tag_send "A");
      Runtime.send rt ~dst:3 ~pid:"r.eq"
        (Reliable_broadcast.encode ~tag:Reliable_broadcast.tag_send "B");
      (* the corrupted party also echoes both values to everyone *)
      for dst = 1 to 3 do
        Runtime.send rt ~dst ~pid:"r.eq"
          (Reliable_broadcast.encode ~tag:Reliable_broadcast.tag_echo "A");
        Runtime.send rt ~dst ~pid:"r.eq"
          (Reliable_broadcast.encode ~tag:Reliable_broadcast.tag_echo "B")
      done);
    ignore (Cluster.run c);
    Util.check_all_equal "honest agreement" (deliveries_of got));

  Alcotest.test_case "reliable: crashed sender delivers nowhere or everywhere" `Quick
    (fun () ->
      (* The sender's SEND reaches only party 1 before it crashes. *)
      let c = Util.cluster ~seed:"rbc4" () in
      let got = Array.make 4 None in
      let insts = make_rbc c "r.cr" 0 got in
      let passed = ref 0 in
      Cluster.set_intercept c (fun ~src ~dst:_ _ ->
        if src = 0 then begin
          incr passed;
          if !passed <= 1 then Sim.Net.Deliver else Sim.Net.Drop
        end
        else Sim.Net.Deliver);
      Cluster.inject c 0 (fun () -> Reliable_broadcast.send insts.(0) "m");
      Cluster.at c ~time:0.001 (fun () -> Cluster.crash c 0);
      ignore (Cluster.run c);
      (* with a single echo, no honest quorum forms: nothing delivered *)
      let delivered = deliveries_of got in
      Alcotest.(check bool) "all-or-nothing" true
        (delivered = [] || List.length delivered >= 3);
      Util.check_all_equal "same value" delivered);

  Alcotest.test_case "consistent: honest sender delivers everywhere" `Quick (fun () ->
    let c = Util.cluster ~seed:"cbc1" () in
    let got = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Consistent_broadcast.create (Cluster.runtime c i) ~pid:"c.0" ~sender:3
          ~on_deliver:(fun m -> got.(i) <- Some m))
    in
    Cluster.inject c 3 (fun () -> Consistent_broadcast.send insts.(3) "echo payload");
    ignore (Cluster.run c);
    Alcotest.(check int) "four deliveries" 4 (List.length (deliveries_of got));
    Util.check_all_equal "same" (deliveries_of got));

  Alcotest.test_case "consistent: closing message is transferable" `Quick (fun () ->
    let c = Util.cluster ~seed:"cbc2" () in
    let got = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Consistent_broadcast.create (Cluster.runtime c i) ~pid:"c.1" ~sender:0
          ~on_deliver:(fun m -> got.(i) <- Some m))
    in
    Cluster.inject c 0 (fun () -> Consistent_broadcast.send insts.(0) "verifiable");
    ignore (Cluster.run c);
    match Consistent_broadcast.get_closing insts.(1) with
    | None -> Alcotest.fail "no closing message"
    | Some closing ->
      Alcotest.(check bool) "valid for instance" true
        (Consistent_broadcast.closing_valid (Cluster.runtime c 2) ~pid:"c.1" closing);
      Alcotest.(check bool) "invalid for other instance" false
        (Consistent_broadcast.closing_valid (Cluster.runtime c 2) ~pid:"c.other" closing);
      Alcotest.(check (option string)) "payload extract" (Some "verifiable")
        (Consistent_broadcast.payload_of_closing closing);
      (* a fresh instance can deliver from the closing message alone *)
      let c2 = Util.cluster ~seed:"cbc2" () in
      let late = ref None in
      let inst =
        Consistent_broadcast.create (Cluster.runtime c2 2) ~pid:"c.1" ~sender:0
          ~on_deliver:(fun m -> late := Some m)
      in
      Alcotest.(check bool) "garbage closing rejected" false
        (Consistent_broadcast.deliver_closing inst "garbage");
      Alcotest.(check bool) "deliver_closing" true
        (Consistent_broadcast.deliver_closing inst closing);
      Alcotest.(check (option string)) "late delivery" (Some "verifiable") !late);

  Alcotest.test_case "consistent: equivocating sender cannot split the group" `Quick
    (fun () ->
      (* Byzantine sender 0 starts the echo phase with payload A at parties
         1,2 and payload B at party 3, releases its own signature share for
         both, and tries to assemble finals for both.  The echo quorum is 3
         of 4, so only one payload can ever gather enough shares. *)
      let c = Util.cluster ~seed:"cbc3" () in
      let got = Array.make 4 None in
      let _insts =
        Array.init 3 (fun k ->
          let i = k + 1 in
          Consistent_broadcast.create (Cluster.runtime c i) ~pid:"c.eq" ~sender:0
            ~on_deliver:(fun m -> got.(i) <- Some m))
      in
      let rt0 = Cluster.runtime c 0 in
      let shares_a = ref [] and shares_b = ref [] in
      let quorum = Config.echo_quorum (Util.cluster ~seed:"cbc3" ()).Cluster.cfg in
      let stmt p = Consistent_broadcast.statement ~pid:"c.eq" p in
      (* party 0's own shares for both payloads *)
      let own p =
        Tsig.release ~drbg:rt0.Runtime.drbg rt0.Runtime.keys.Dealer.bc_tsig
          ~ctx:"c.eq" (stmt p)
      in
      shares_a := [ own "A" ];
      shares_b := [ own "B" ];
      let try_final payload shares =
        if List.length shares >= quorum then begin
          let pub = Tsig.public_of_secret rt0.Runtime.keys.Dealer.bc_tsig in
          let signature = Tsig.assemble pub ~ctx:"c.eq" (stmt payload) shares in
          let body =
            Wire.encode (fun b ->
              Wire.Enc.u8 b Consistent_broadcast.tag_final;
              Wire.Enc.bytes b payload;
              Wire.Enc.bytes b signature)
          in
          for dst = 1 to 3 do Runtime.send rt0 ~dst ~pid:"c.eq" body done
        end
      in
      Runtime.register rt0 ~pid:"c.eq" (fun ~src body ->
        match Wire.decode_prefix body (fun d -> (Wire.Dec.u8 d, d)) with
        | Some (tag, d) when tag = Consistent_broadcast.tag_echo ->
          (match (try Some (Tsig.dec_share d) with Wire.Decode _ -> None) with
           | Some share ->
             if src = 3 then begin
               shares_b := share :: !shares_b;
               try_final "B" !shares_b
             end
             else begin
               shares_a := share :: !shares_a;
               try_final "A" !shares_a
             end
           | None -> ())
        | _ -> ());
      Cluster.inject c 0 (fun () ->
        let send_to dst payload =
          Runtime.send rt0 ~dst ~pid:"c.eq"
            (Wire.encode (fun b ->
               Wire.Enc.u8 b Consistent_broadcast.tag_send;
               Wire.Enc.bytes b payload))
        in
        send_to 1 "A"; send_to 2 "A"; send_to 3 "B");
      ignore (Cluster.run c);
      (* only A can reach the quorum; every delivering party delivers A *)
      let delivered = deliveries_of got in
      Util.check_all_equal "consistency" delivered;
      List.iter (fun v -> Alcotest.(check string) "value A" "A" v) delivered);
]
