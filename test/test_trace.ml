(* Tests for lib/trace: metrics arithmetic, sink determinism (a trace is a
   pure function of the seed), zero-perturbation instrumentation, and the
   Chrome trace-event renderer. *)

open Sintra

let raises_invalid (f : unit -> unit) : bool =
  try
    f ();
    false
  with Invalid_argument _ -> true

(* Drive a short two-sender atomic-channel run; returns the cluster and the
   delivery log observed at party 0. *)
let run_atomic ~(seed : string) ?(sink : Trace.Sink.t option) () :
  Cluster.t * (float * int * string) list =
  let c = Util.cluster ~seed () in
  (match sink with Some s -> Cluster.set_sink c s | None -> ());
  let log = ref [] in
  let chans =
    Array.init 4 (fun i ->
      Atomic_channel.create (Cluster.runtime c i) ~pid:"tr"
        ~on_deliver:(fun ~sender m ->
          if i = 0 then log := (Cluster.now c, sender, m) :: !log)
        ())
  in
  for k = 0 to 2 do
    Cluster.inject c 0 (fun () ->
      Atomic_channel.send chans.(0) (Printf.sprintf "m%d" k));
    Cluster.inject c 2 (fun () ->
      Atomic_channel.send chans.(2) (Printf.sprintf "n%d" k))
  done;
  ignore (Cluster.run c);
  (c, List.rev !log)

let jsonl_of_run ~(seed : string) : string * (float * int * string) list =
  let buf = Buffer.create 4096 in
  let _, log = run_atomic ~seed ~sink:(Trace.Sink.jsonl buf) () in
  (Buffer.contents buf, log)

let suite = [
  (* --- metrics arithmetic --- *)

  Alcotest.test_case "counter: inc/add/set and kind clash" `Quick (fun () ->
    let m = Trace.Metrics.create () in
    let c = Trace.Metrics.counter m "x" in
    Trace.Metrics.inc c;
    Trace.Metrics.add c 2.5;
    Alcotest.(check (float 1e-9)) "value" 3.5 (Trace.Metrics.value c);
    Trace.Metrics.set c 7.0;
    Alcotest.(check (float 1e-9)) "set wins" 7.0 (Trace.Metrics.value c);
    Alcotest.(check (float 1e-9)) "get-or-create returns the same cell" 7.0
      (Trace.Metrics.value (Trace.Metrics.counter m "x"));
    Alcotest.(check bool) "histogram under a counter name raises" true
      (raises_invalid (fun () -> ignore (Trace.Metrics.histogram m "x")));
    Alcotest.(check bool) "counter under a histogram name raises" true
      (raises_invalid (fun () ->
         ignore (Trace.Metrics.histogram m "h");
         ignore (Trace.Metrics.counter m "h"))));

  Alcotest.test_case "histogram: bucket boundaries and overflow" `Quick (fun () ->
    let m = Trace.Metrics.create () in
    let h = Trace.Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] m "lat" in
    (* a value equal to a bound lands in that bucket, just above goes up *)
    List.iter (Trace.Metrics.observe h) [ 0.5; 1.0; 1.000001; 2.0; 5.0; 7.0 ];
    Alcotest.(check (list (pair (float 1e-9) int))) "buckets"
      [ (1.0, 2); (2.0, 2); (5.0, 1); (infinity, 1) ]
      (Trace.Metrics.hist_buckets h);
    Alcotest.(check int) "count" 6 (Trace.Metrics.hist_count h);
    Alcotest.(check (float 1e-9)) "sum" 16.500001 (Trace.Metrics.hist_sum h);
    Alcotest.(check (float 1e-6)) "mean" (16.500001 /. 6.0)
      (Trace.Metrics.hist_mean h);
    (* 6 observations: the 3rd lands in the 2.0 bucket *)
    Alcotest.(check (float 1e-9)) "median bucket" 2.0
      (Trace.Metrics.hist_quantile h 0.5);
    Alcotest.(check bool) "descending bounds raise" true
      (raises_invalid (fun () ->
         ignore (Trace.Metrics.histogram ~buckets:[| 2.0; 1.0 |] m "bad"))));

  Alcotest.test_case "histogram: merge and bound mismatch" `Quick (fun () ->
    let m = Trace.Metrics.create () in
    let a = Trace.Metrics.histogram ~buckets:[| 1.0; 2.0 |] m "a" in
    let b = Trace.Metrics.histogram ~buckets:[| 1.0; 2.0 |] m "b" in
    List.iter (Trace.Metrics.observe a) [ 0.5; 3.0 ];
    List.iter (Trace.Metrics.observe b) [ 1.5; 1.6 ];
    Trace.Metrics.merge_into ~into:a b;
    Alcotest.(check (list (pair (float 1e-9) int))) "merged buckets"
      [ (1.0, 1); (2.0, 2); (infinity, 1) ]
      (Trace.Metrics.hist_buckets a);
    Alcotest.(check int) "merged count" 4 (Trace.Metrics.hist_count a);
    Alcotest.(check (float 1e-9)) "merged sum" 6.6 (Trace.Metrics.hist_sum a);
    let other = Trace.Metrics.histogram ~buckets:[| 9.0 |] m "c" in
    Alcotest.(check bool) "bound mismatch raises" true
      (raises_invalid (fun () -> Trace.Metrics.merge_into ~into:a other)));

  Alcotest.test_case "registry: deterministic sorted dump" `Quick (fun () ->
    let m = Trace.Metrics.create () in
    Trace.Metrics.set (Trace.Metrics.counter m "zz") 1.0;
    Trace.Metrics.set (Trace.Metrics.counter m "aa") 2.0;
    Trace.Metrics.set (Trace.Metrics.counter m "mm") 3.0;
    Alcotest.(check (list (pair string (float 1e-9)))) "sorted by name"
      [ ("aa", 2.0); ("mm", 3.0); ("zz", 1.0) ]
      (Trace.Metrics.dump m));

  (* --- determinism --- *)

  Alcotest.test_case "jsonl: same seed, byte-identical trace" `Quick (fun () ->
    let t1, _ = jsonl_of_run ~seed:"det" in
    let t2, _ = jsonl_of_run ~seed:"det" in
    Alcotest.(check bool) "nonempty" true (String.length t1 > 0);
    Alcotest.(check string) "byte-identical" t1 t2);

  Alcotest.test_case "jsonl: different seed, different trace" `Quick (fun () ->
    let t1, _ = jsonl_of_run ~seed:"det" in
    let t3, _ = jsonl_of_run ~seed:"det-other" in
    Alcotest.(check bool) "traces differ" true (t1 <> t3));

  Alcotest.test_case "tracing does not perturb the run" `Quick (fun () ->
    (* The null sink is the untraced baseline; a live sink must yield the
       exact same delivery times and order. *)
    let _, untraced = run_atomic ~seed:"perturb" () in
    let _, traced = jsonl_of_run ~seed:"perturb" |> snd |> fun l -> ((), l) in
    Alcotest.(check bool) "deliveries happened" true (untraced <> []);
    Alcotest.(check (list (pair (float 1e-12) (pair int string))))
      "identical delivery schedule"
      (List.map (fun (t, s, m) -> (t, (s, m))) untraced)
      (List.map (fun (t, s, m) -> (t, (s, m))) traced));

  Alcotest.test_case "jsonl: parses and carries the event fields" `Quick
    (fun () ->
      let t1, _ = jsonl_of_run ~seed:"det" in
      match Trace.Json.parse_lines t1 with
      | Error e -> Alcotest.failf "jsonl does not parse: %s" e
      | Ok events ->
        Alcotest.(check bool) "many events" true (List.length events > 50);
        List.iter
          (fun ev ->
            let has f = Trace.Json.member f ev <> None in
            if not (has "t" && has "party" && has "pid" && has "cat"
                    && has "ph" && has "name")
            then Alcotest.fail "event missing a required field")
          events);

  (* --- chrome trace-event output --- *)

  Alcotest.test_case "chrome: valid JSON with balanced spans" `Quick (fun () ->
    let ch = Trace.Sink.chrome () in
    let _, _ = run_atomic ~seed:"chrome" ~sink:(Trace.Sink.chrome_sink ch) () in
    let doc = Trace.Sink.chrome_contents ch in
    match Trace.Json.parse doc with
    | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
    | Ok v ->
      let events =
        match Option.bind (Trace.Json.member "traceEvents" v) Trace.Json.list_opt with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "many events" true (List.length events > 50);
      (* balanced B/E per (pid, tid) lane *)
      let lanes : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let field f ev = Option.bind (Trace.Json.member f ev) Trace.Json.num_opt in
      let cats = ref [] in
      List.iter
        (fun ev ->
          let lane =
            Printf.sprintf "%.0f:%.0f"
              (Option.value ~default:(-1.0) (field "pid" ev))
              (Option.value ~default:(-1.0) (field "tid" ev))
          in
          (match Option.bind (Trace.Json.member "cat" ev) Trace.Json.str_opt with
           | Some c when not (List.mem c !cats) -> cats := c :: !cats
           | Some _ | None -> ());
          match Option.bind (Trace.Json.member "ph" ev) Trace.Json.str_opt with
          | Some "B" ->
            Hashtbl.replace lanes lane
              (1 + Option.value ~default:0 (Hashtbl.find_opt lanes lane))
          | Some "E" ->
            let d = Option.value ~default:0 (Hashtbl.find_opt lanes lane) - 1 in
            if d < 0 then Alcotest.failf "unmatched E on lane %s" lane;
            Hashtbl.replace lanes lane d
          | Some _ -> ()
          | None -> Alcotest.fail "event without ph")
        events;
      Hashtbl.iter
        (fun lane d ->
          if d <> 0 then Alcotest.failf "%d unclosed span(s) on lane %s" d lane)
        lanes;
      (* protocol, crypto and network events all made it through *)
      List.iter
        (fun c ->
          Alcotest.(check bool) (Printf.sprintf "category %s present" c) true
            (List.mem c !cats))
        [ "bcast"; "aba"; "abc"; "crypto"; "net" ]);

  Alcotest.test_case "metrics: published per-party registry" `Quick (fun () ->
    let c, log = run_atomic ~seed:"reg" () in
    let m = Cluster.publish_metrics c in
    Alcotest.(check bool) "deliveries happened" true (log <> []);
    let get name =
      match Trace.Metrics.find_counter m name with
      | Some ct -> Trace.Metrics.value ct
      | None -> Alcotest.failf "missing counter %s" name
    in
    for i = 0 to 3 do
      Alcotest.(check bool) (Printf.sprintf "p%d sent messages" i) true
        (get (Printf.sprintf "p%d/net.sent_msgs" i) > 0.0);
      Alcotest.(check bool) (Printf.sprintf "p%d charged cpu" i) true
        (get (Printf.sprintf "p%d/cpu.charged_s" i) > 0.0)
    done;
    (* sender 0's enqueue->deliver latencies landed in its histogram *)
    match Trace.Metrics.find_hist m "p0/abc.latency" with
    | None -> Alcotest.fail "missing p0/abc.latency histogram"
    | Some h ->
      Alcotest.(check int) "three sends measured" 3 (Trace.Metrics.hist_count h));
]
