(* Tests for the channels: atomic, secure causal atomic, reliable,
   consistent. *)

open Sintra

let make_atomic ?(n = 4) (c : Cluster.t) pid =
  let logs = Array.init n (fun _ -> ref []) in
  let closed = Array.make n false in
  let chans =
    Array.init n (fun i ->
      Atomic_channel.create (Cluster.runtime c i) ~pid
        ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i)))
        ~on_close:(fun () -> closed.(i) <- true) ())
  in
  (chans, logs, closed)

let sequences logs = Array.map (fun l -> List.rev !l) logs

let suite = [
  Alcotest.test_case "atomic: single sender, in-order total delivery" `Quick (fun () ->
    let c = Util.cluster ~seed:"at1" () in
    let chans, logs, _ = make_atomic c "abc" in
    for k = 0 to 4 do
      Cluster.inject c 1 (fun () -> Atomic_channel.send chans.(1) (Printf.sprintf "m%d" k))
    done;
    ignore (Cluster.run c);
    let seqs = sequences logs in
    Util.check_all_equal "total order" (Array.to_list seqs);
    Alcotest.(check (list (pair int string))) "sender order preserved"
      (List.init 5 (fun k -> (1, Printf.sprintf "m%d" k)))
      seqs.(0));

  Alcotest.test_case "atomic: concurrent senders, identical order everywhere" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"at2" () in
      let chans, logs, _ = make_atomic c "abc" in
      for i = 0 to 3 do
        for k = 0 to 3 do
          Cluster.inject c i (fun () ->
            Atomic_channel.send chans.(i) (Printf.sprintf "m%d.%d" i k))
        done
      done;
      ignore (Cluster.run c);
      let seqs = sequences logs in
      Util.check_all_equal "total order" (Array.to_list seqs);
      Alcotest.(check int) "all 16 delivered" 16 (List.length seqs.(0));
      (* no duplicates *)
      Alcotest.(check int) "distinct" 16
        (List.length (List.sort_uniq compare seqs.(0)));
      (* per-sender FIFO *)
      for i = 0 to 3 do
        let mine = List.filter (fun (s, _) -> s = i) seqs.(0) in
        Alcotest.(check (list (pair int string))) (Printf.sprintf "fifo %d" i)
          (List.init 4 (fun k -> (i, Printf.sprintf "m%d.%d" i k)))
          mine
      done);

  Alcotest.test_case "atomic: tolerates a crashed party" `Quick (fun () ->
    let c = Util.cluster ~seed:"at3" () in
    let chans, logs, _ = make_atomic c "abc" in
    Cluster.crash c 3;
    for k = 0 to 2 do
      Cluster.inject c 0 (fun () -> Atomic_channel.send chans.(0) (Printf.sprintf "x%d" k))
    done;
    ignore (Cluster.run c);
    let seqs = sequences logs in
    Util.check_all_equal "order among live" [ seqs.(0); seqs.(1); seqs.(2) ];
    Alcotest.(check int) "all delivered" 3 (List.length seqs.(0)));

  Alcotest.test_case "atomic: byzantine party cannot forge a sender" `Quick (fun () ->
    (* Party 0 injects an INIT claiming to carry a message from party 2 with
       a bogus signature; the batch validator must reject it everywhere, and
       the channel must still deliver honest traffic. *)
    let c = Util.cluster ~seed:"at4" () in
    let chans, logs, _ = make_atomic c "abc" in
    Cluster.inject c 0 (fun () ->
      let rt = Cluster.runtime c 0 in
      let body =
        Wire.encode (fun b ->
          Wire.Enc.u8 b 0;
          Wire.Enc.int b 0;          (* round *)
          Wire.Enc.int b 2;          (* forged orig *)
          Wire.Enc.int b 0;          (* seq *)
          Wire.Enc.bytes b "\x01forged-from-2";
          Wire.Enc.int b 0;          (* signer = 0, but sig is garbage *)
          Wire.Enc.bytes b (String.make 32 '\000'))
      in
      for dst = 0 to 3 do Runtime.send rt ~dst ~pid:"abc" body done);
    Cluster.inject c 1 (fun () -> Atomic_channel.send chans.(1) "legit");
    ignore (Cluster.run c);
    let seqs = sequences logs in
    Util.check_all_equal "order" (Array.to_list seqs);
    Alcotest.(check (list (pair int string))) "only legit" [ (1, "legit") ] seqs.(0));

  Alcotest.test_case "atomic: close needs t+1 requests" `Quick (fun () ->
    let c = Util.cluster ~seed:"at5" () in
    let chans, _, closed = make_atomic c "abc" in
    (* one close request (t = 1) is not enough *)
    Cluster.inject c 0 (fun () -> Atomic_channel.close chans.(0));
    ignore (Cluster.run c);
    Alcotest.(check bool) "not closed" false (Array.exists (fun x -> x) closed);
    (* a second requester closes the channel everywhere *)
    Cluster.inject c 1 (fun () -> Atomic_channel.close chans.(1));
    ignore (Cluster.run c);
    Alcotest.(check bool) "all closed" true (Array.for_all (fun x -> x) closed);
    Alcotest.check_raises "send after close"
      (Invalid_argument "Atomic_channel.send: channel closed")
      (fun () -> Atomic_channel.send chans.(2) "late"));

  Alcotest.test_case "atomic: messages before close are delivered" `Quick (fun () ->
    let c = Util.cluster ~seed:"at6" () in
    let chans, logs, closed = make_atomic c "abc" in
    Cluster.inject c 0 (fun () ->
      Atomic_channel.send chans.(0) "before";
      Atomic_channel.close chans.(0));
    Cluster.inject c 1 (fun () -> Atomic_channel.close chans.(1));
    Cluster.inject c 2 (fun () -> Atomic_channel.close chans.(2));
    ignore (Cluster.run c);
    Alcotest.(check bool) "closed" true (Array.for_all (fun x -> x) closed);
    let seqs = sequences logs in
    Util.check_all_equal "order" (Array.to_list seqs);
    Alcotest.(check bool) "payload delivered" true
      (List.mem (0, "before") seqs.(0)));

  Alcotest.test_case "atomic: batch size n-t also works" `Quick (fun () ->
    let c = Util.cluster ~seed:"at7" ~batch_size:3 () in
    let chans, logs, _ = make_atomic c "abc" in
    for i = 0 to 2 do
      Cluster.inject c i (fun () -> Atomic_channel.send chans.(i) (Printf.sprintf "b%d" i))
    done;
    ignore (Cluster.run c);
    let seqs = sequences logs in
    Util.check_all_equal "order" (Array.to_list seqs);
    Alcotest.(check int) "all three" 3 (List.length seqs.(0)));

  Alcotest.test_case "secure: total order and correct plaintexts" `Quick (fun () ->
    let c = Util.cluster ~seed:"sc1" () in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"sac"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    for i = 0 to 2 do
      Cluster.inject c i (fun () ->
        Secure_atomic_channel.send chans.(i) (Printf.sprintf "secret-%d" i))
    done;
    ignore (Cluster.run c);
    let seqs = sequences logs in
    Util.check_all_equal "order" (Array.to_list seqs);
    Alcotest.(check int) "three" 3 (List.length seqs.(0));
    List.iter
      (fun (s, m) -> Alcotest.(check string) "plaintext" (Printf.sprintf "secret-%d" s) m)
      seqs.(0));

  Alcotest.test_case "secure: plaintext never appears on the wire" `Quick (fun () ->
    let c = Util.cluster ~seed:"sc2" () in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"sac"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    let secret = "EXTREMELY-SECRET-BID-1234567" in
    let contains_secret = ref false in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      m > 0 && go 0
    in
    Cluster.set_intercept c (fun ~src:_ ~dst:_ payload ->
      if contains payload secret then contains_secret := true;
      Sim.Net.Deliver);
    Cluster.inject c 0 (fun () -> Secure_atomic_channel.send chans.(0) secret);
    ignore (Cluster.run c);
    Alcotest.(check bool) "confidential on the wire" false !contains_secret;
    Alcotest.(check (list (pair int string))) "but delivered" [ (0, secret) ]
      (List.rev !(logs.(1))));

  Alcotest.test_case "secure: ciphertext event precedes delivery" `Quick (fun () ->
    let c = Util.cluster ~seed:"sc3" () in
    let order = ref [] in
    let chans =
      Array.init 4 (fun i ->
        Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"sac"
          ~on_deliver:(fun ~sender:_ _ -> if i = 1 then order := `Plain :: !order)
          ~on_ciphertext:(fun ~sender:_ _ -> if i = 1 then order := `Cipher :: !order)
          ())
    in
    Cluster.inject c 2 (fun () -> Secure_atomic_channel.send chans.(2) "m");
    ignore (Cluster.run c);
    Alcotest.(check bool) "cipher first" true (List.rev !order = [ `Cipher; `Plain ]));

  Alcotest.test_case "secure: external ciphertext via sendCiphertext" `Quick (fun () ->
    let c = Util.cluster ~seed:"sc4" () in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"sac"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    (* an outside client encrypts with only the public key... *)
    let ct =
      Secure_atomic_channel.encrypt ~drbg:(Util.drbg ~seed:"client" ())
        ~enc_pub:c.Cluster.dealer.Dealer.enc_pub ~pid:"sac" "from outside"
    in
    (* ...and hands the ciphertext to a group member for broadcasting *)
    Cluster.inject c 3 (fun () -> Secure_atomic_channel.send_ciphertext chans.(3) ct);
    ignore (Cluster.run c);
    List.iter
      (fun log ->
        Alcotest.(check (list (pair int string))) "delivered" [ (3, "from outside") ]
          (List.rev !log))
      (Array.to_list logs));

  Alcotest.test_case "secure: garbage ciphertext skipped consistently" `Quick (fun () ->
    let c = Util.cluster ~seed:"sc5" () in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"sac"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    Cluster.inject c 0 (fun () ->
      Secure_atomic_channel.send_ciphertext chans.(0) "not a ciphertext at all");
    Cluster.inject c 1 (fun () -> Secure_atomic_channel.send chans.(1) "real");
    ignore (Cluster.run c);
    let seqs = sequences logs in
    Util.check_all_equal "order" (Array.to_list seqs);
    Alcotest.(check (list (pair int string))) "only real" [ (1, "real") ] seqs.(0));

  Alcotest.test_case "reliable channel: unordered but complete" `Quick (fun () ->
    let c = Util.cluster ~seed:"rc1" () in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Reliable_channel.create (Cluster.runtime c i) ~pid:"rch"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    for i = 0 to 3 do
      for k = 0 to 3 do
        Cluster.inject c i (fun () ->
          Reliable_channel.send chans.(i) (Printf.sprintf "r%d.%d" i k))
      done
    done;
    ignore (Cluster.run c);
    Array.iteri
      (fun i log ->
        Alcotest.(check int) (Printf.sprintf "party %d count" i) 16 (List.length !log);
        (* per-sender order is preserved by the sequence-numbered instances *)
        for s = 0 to 3 do
          let mine = List.filter (fun (x, _) -> x = s) (List.rev !log) in
          Alcotest.(check (list (pair int string))) "fifo"
            (List.init 4 (fun k -> (s, Printf.sprintf "r%d.%d" s k)))
            mine
        done)
      logs);

  Alcotest.test_case "reliable channel: close on t+1 requests" `Quick (fun () ->
    let c = Util.cluster ~seed:"rc2" () in
    let closed = Array.make 4 false in
    let chans =
      Array.init 4 (fun i ->
        Reliable_channel.create (Cluster.runtime c i) ~pid:"rch"
          ~on_deliver:(fun ~sender:_ _ -> ())
          ~on_close:(fun () -> closed.(i) <- true) ())
    in
    Cluster.inject c 0 (fun () -> Reliable_channel.close chans.(0));
    ignore (Cluster.run c);
    Alcotest.(check bool) "one is not enough" false (Array.exists (fun x -> x) closed);
    Cluster.inject c 3 (fun () -> Reliable_channel.close chans.(3));
    ignore (Cluster.run c);
    Alcotest.(check bool) "closed everywhere" true (Array.for_all (fun x -> x) closed));

  Alcotest.test_case "consistent channel: delivers and counts match" `Quick (fun () ->
    let c = Util.cluster ~seed:"cc1" () in
    let counts = Array.make 4 0 in
    let chans =
      Array.init 4 (fun i ->
        Consistent_channel.create (Cluster.runtime c i) ~pid:"cch"
          ~on_deliver:(fun ~sender:_ _ -> counts.(i) <- counts.(i) + 1) ())
    in
    for i = 0 to 3 do
      for _k = 0 to 2 do
        Cluster.inject c i (fun () -> Consistent_channel.send chans.(i) "payload")
      done
    done;
    ignore (Cluster.run c);
    Array.iteri
      (fun i n -> Alcotest.(check int) (Printf.sprintf "party %d" i) 12 n)
      counts);

  Alcotest.test_case "runtime: orphan messages replay on late registration" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"orph" () in
      (* party 0 broadcasts before party 2 has created the instance *)
      let got = ref None in
      let insts01 =
        List.map
          (fun i ->
            Reliable_broadcast.create (Cluster.runtime c i) ~pid:"late" ~sender:0
              ~on_deliver:(fun _ -> ()))
          [ 0; 1; 3 ]
      in
      Cluster.inject c 0 (fun () ->
        Reliable_broadcast.send (List.hd insts01) "buffered");
      ignore (Cluster.run c);
      (* now the late party joins and must still deliver from the buffer *)
      let _late =
        Reliable_broadcast.create (Cluster.runtime c 2) ~pid:"late" ~sender:0
          ~on_deliver:(fun m -> got := Some m)
      in
      ignore (Cluster.run c);
      Alcotest.(check (option string)) "delivered from orphans" (Some "buffered") !got);

  Alcotest.test_case "runtime: duplicate registration rejected" `Quick (fun () ->
    let c = Util.cluster ~seed:"dup" () in
    let rt = Cluster.runtime c 0 in
    Runtime.register rt ~pid:"x" (fun ~src:_ _ -> ());
    Alcotest.check_raises "dup" (Invalid_argument "Runtime.register: duplicate pid \"x\"")
      (fun () -> Runtime.register rt ~pid:"x" (fun ~src:_ _ -> ())));
]
