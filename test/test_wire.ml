(* Wire codec tests: roundtrips and decoder robustness against adversarial
   bytes (a corrupted party controls everything it sends). *)

let roundtrip enc dec v =
  Wire.decode (Wire.encode (fun b -> enc b v)) dec

let qtest ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let suite = [
  Alcotest.test_case "int roundtrip corner values" `Quick (fun () ->
    List.iter
      (fun v ->
        Alcotest.(check (option int)) (string_of_int v) (Some v)
          (roundtrip Wire.Enc.int Wire.Dec.int v))
      [ 0; 1; 127; 128; 255; 16384; 1 lsl 30; max_int ]);

  Alcotest.test_case "negative int rejected at encode" `Quick (fun () ->
    Alcotest.check_raises "negative" (Invalid_argument "Wire.Enc.int: negative")
      (fun () -> ignore (Wire.encode (fun b -> Wire.Enc.int b (-1)))));

  Alcotest.test_case "bytes roundtrip" `Quick (fun () ->
    List.iter
      (fun s ->
        Alcotest.(check (option string)) "same" (Some s)
          (roundtrip Wire.Enc.bytes Wire.Dec.bytes s))
      [ ""; "a"; String.make 1000 '\xff'; "\x00\x01\x02" ]);

  Alcotest.test_case "bool tags strict" `Quick (fun () ->
    Alcotest.(check (option bool)) "true" (Some true) (Wire.decode "\x01" Wire.Dec.bool);
    Alcotest.(check (option bool)) "false" (Some false) (Wire.decode "\x00" Wire.Dec.bool);
    Alcotest.(check (option bool)) "2 invalid" None (Wire.decode "\x02" Wire.Dec.bool));

  Alcotest.test_case "list and option roundtrip" `Quick (fun () ->
    let enc b v = Wire.Enc.list b Wire.Enc.int v in
    let dec d = Wire.Dec.list d Wire.Dec.int in
    Alcotest.(check (option (list int))) "list" (Some [1;2;3;500]) (roundtrip enc dec [1;2;3;500]);
    Alcotest.(check (option (list int))) "empty" (Some []) (roundtrip enc dec []);
    let enc b v = Wire.Enc.option b Wire.Enc.bytes v in
    let dec d = Wire.Dec.option d Wire.Dec.bytes in
    Alcotest.(check (option (option string))) "some" (Some (Some "x")) (roundtrip enc dec (Some "x"));
    Alcotest.(check (option (option string))) "none" (Some None) (roundtrip enc dec None));

  Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
    let encoded = Wire.encode (fun b -> Wire.Enc.int b 5) ^ "junk" in
    Alcotest.(check (option int)) "strict" None (Wire.decode encoded Wire.Dec.int);
    (* decode_prefix tolerates them *)
    Alcotest.(check (option int)) "prefix" (Some 5) (Wire.decode_prefix encoded Wire.Dec.int));

  Alcotest.test_case "truncation rejected" `Quick (fun () ->
    let encoded = Wire.encode (fun b -> Wire.Enc.bytes b "hello") in
    Alcotest.(check (option string)) "cut" None
      (Wire.decode (String.sub encoded 0 (String.length encoded - 1)) Wire.Dec.bytes));

  Alcotest.test_case "u8 bounds" `Quick (fun () ->
    Alcotest.check_raises "256" (Invalid_argument "Wire.Enc.u8")
      (fun () -> ignore (Wire.encode (fun b -> Wire.Enc.u8 b 256))));

  Alcotest.test_case "overlong varint rejected" `Quick (fun () ->
    (* 10 continuation bytes exceed the 63-bit budget *)
    let s = String.make 10 '\xff' in
    Alcotest.(check (option int)) "rejected" None (Wire.decode s Wire.Dec.int));

  qtest "random bytes never crash the decoder"
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s ->
      (* Exercise all decoders; they must return None or a value, never
         raise anything but the internal Decode (caught by Wire.decode). *)
      let try_dec f = ignore (Wire.decode s f) in
      try_dec Wire.Dec.int;
      try_dec Wire.Dec.bytes;
      try_dec Wire.Dec.bool;
      try_dec (fun d -> Wire.Dec.list d Wire.Dec.bytes);
      try_dec (fun d -> Wire.Dec.option d Wire.Dec.int);
      true);

  qtest "mixed structure roundtrip"
    QCheck.(triple small_nat (list small_nat) (option string))
    (fun (a, xs, so) ->
      let enc b () =
        Wire.Enc.int b a;
        Wire.Enc.list b Wire.Enc.int xs;
        Wire.Enc.option b Wire.Enc.bytes so
      in
      let dec d =
        let a' = Wire.Dec.int d in
        let xs' = Wire.Dec.list d Wire.Dec.int in
        let so' = Wire.Dec.option d Wire.Dec.bytes in
        (a', xs', so')
      in
      Wire.decode (Wire.encode (fun b -> enc b ())) dec = Some (a, xs, so));
]
