(* Tests for the discrete-event simulator: event ordering, determinism,
   link FIFO and authentication, CPU accounting. *)

let suite = [
  Alcotest.test_case "heap orders by time then sequence" `Quick (fun () ->
    let h = Sim.Heap.create () in
    Sim.Heap.push h ~time:2.0 "c";
    Sim.Heap.push h ~time:1.0 "a";
    Sim.Heap.push h ~time:1.0 "b";   (* same time: insertion order *)
    Sim.Heap.push h ~time:0.5 "z";
    let order = List.init 4 (fun _ -> match Sim.Heap.pop h with Some (_, v) -> v | None -> "?") in
    Alcotest.(check (list string)) "order" [ "z"; "a"; "b"; "c" ] order;
    Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h));

  Alcotest.test_case "heap stress against sorted reference" `Quick (fun () ->
    let h = Sim.Heap.create () in
    let d = Hashes.Drbg.create ~seed:"heap" in
    let times = List.init 500 (fun _ -> Hashes.Drbg.float d 100.0) in
    List.iter (fun t -> Sim.Heap.push h ~time:t t) times;
    let popped = List.init 500 (fun _ -> match Sim.Heap.pop h with Some (_, v) -> v | None -> nan) in
    Alcotest.(check bool) "sorted" true (popped = List.sort compare times));

  Alcotest.test_case "engine executes in time order" `Quick (fun () ->
    let e = Sim.Engine.create () in
    let log = ref [] in
    Sim.Engine.schedule e ~delay:3.0 (fun () -> log := "late" :: !log);
    Sim.Engine.schedule e ~delay:1.0 (fun () ->
      log := "early" :: !log;
      (* events scheduled from events run too *)
      Sim.Engine.schedule e ~delay:1.0 (fun () -> log := "nested" :: !log));
    let n = Sim.Engine.run e in
    Alcotest.(check int) "three events" 3 n;
    Alcotest.(check (list string)) "order" [ "late"; "nested"; "early" ] !log;
    Alcotest.(check (float 1e-9)) "clock" 3.0 (Sim.Engine.now e));

  Alcotest.test_case "engine until bound" `Quick (fun () ->
    let e = Sim.Engine.create () in
    let hits = ref 0 in
    for i = 1 to 10 do
      Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr hits)
    done;
    let n = Sim.Engine.run ~until:5.5 e in
    Alcotest.(check int) "five ran" 5 n;
    Alcotest.(check int) "hits" 5 !hits;
    Alcotest.(check int) "rest pending" 5 (Sim.Engine.pending e));

  Alcotest.test_case "negative delays clamp to now" `Quick (fun () ->
    let e = Sim.Engine.create () in
    let ran = ref false in
    Sim.Engine.schedule e ~delay:(-5.0) (fun () -> ran := true);
    ignore (Sim.Engine.run e);
    Alcotest.(check bool) "ran" true !ran;
    Alcotest.(check (float 1e-9)) "at zero" 0.0 (Sim.Engine.now e));

  Alcotest.test_case "network delivers with topology latency" `Quick (fun () ->
    let topo = Sim.Topology.uniform ~count:2 ~latency:0.5 ~jitter_frac:0.0 () in
    let engine = Sim.Engine.create () in
    let keys = Array.make_matrix 2 2 "k" in
    let net = Sim.Net.create ~engine ~topo ~mac_keys:keys in
    let arrival = ref nan in
    Sim.Net.set_handler net 1 (fun ~src:_ _ -> arrival := Sim.Engine.now engine);
    Sim.Net.send net ~src:0 ~dst:1 "ping";
    ignore (Sim.Engine.run engine);
    Alcotest.(check (float 1e-6)) "0.5s" 0.5 !arrival);

  Alcotest.test_case "per-pair FIFO even under jitter" `Quick (fun () ->
    let topo = Sim.Topology.uniform ~count:2 ~latency:0.1 ~jitter_frac:0.9 () in
    let engine = Sim.Engine.create ~seed:"fifo" () in
    let net = Sim.Net.create ~engine ~topo ~mac_keys:(Array.make_matrix 2 2 "k") in
    let got = ref [] in
    Sim.Net.set_handler net 1 (fun ~src:_ m -> got := m :: !got);
    for i = 0 to 49 do
      Sim.Net.send net ~src:0 ~dst:1 (string_of_int i)
    done;
    ignore (Sim.Engine.run engine);
    Alcotest.(check (list string)) "in order"
      (List.init 50 string_of_int) (List.rev !got));

  Alcotest.test_case "simulation is deterministic in its seed" `Quick (fun () ->
    let run_once () =
      let topo = Sim.Topology.uniform ~count:3 ~latency:0.05 ~jitter_frac:0.5 () in
      let engine = Sim.Engine.create ~seed:"det" () in
      let net = Sim.Net.create ~engine ~topo ~mac_keys:(Array.make_matrix 3 3 "k") in
      let log = ref [] in
      for i = 0 to 2 do
        Sim.Net.set_handler net i (fun ~src m ->
          log := Printf.sprintf "%d<-%d:%s@%.9f" i src m (Sim.Engine.now engine) :: !log)
      done;
      Sim.Net.send net ~src:0 ~dst:1 "a";
      Sim.Net.send net ~src:1 ~dst:2 "b";
      Sim.Net.send net ~src:2 ~dst:0 "c";
      ignore (Sim.Engine.run engine);
      !log
    in
    Alcotest.(check (list string)) "identical" (run_once ()) (run_once ()));

  Alcotest.test_case "tampered payloads are dropped by the MAC" `Quick (fun () ->
    let topo = Sim.Topology.uniform ~count:2 () in
    let engine = Sim.Engine.create () in
    let net = Sim.Net.create ~engine ~topo ~mac_keys:(Array.make_matrix 2 2 "secret") in
    let got = ref 0 in
    Sim.Net.set_handler net 1 (fun ~src:_ _ -> incr got);
    Sim.Net.set_intercept net (fun ~src:_ ~dst:_ payload ->
      if payload = "evil-target" then Sim.Net.Replace "replaced!" else Sim.Net.Deliver);
    Sim.Net.send net ~src:0 ~dst:1 "fine";
    Sim.Net.send net ~src:0 ~dst:1 "evil-target";
    ignore (Sim.Engine.run engine);
    Alcotest.(check int) "only clean delivered" 1 !got;
    Alcotest.(check int) "mac failure counted" 1 (Sim.Net.mac_failures net));

  Alcotest.test_case "drop and delay interception" `Quick (fun () ->
    let topo = Sim.Topology.uniform ~count:2 ~latency:0.1 ~jitter_frac:0.0 () in
    let engine = Sim.Engine.create () in
    let net = Sim.Net.create ~engine ~topo ~mac_keys:(Array.make_matrix 2 2 "k") in
    let arrivals = ref [] in
    Sim.Net.set_handler net 1 (fun ~src:_ m ->
      arrivals := (m, Sim.Engine.now engine) :: !arrivals);
    Sim.Net.set_intercept net (fun ~src:_ ~dst:_ payload ->
      match payload with
      | "dropme" -> Sim.Net.Drop
      | "slow" -> Sim.Net.Delay 5.0
      | _ -> Sim.Net.Deliver);
    Sim.Net.send net ~src:0 ~dst:1 "dropme";
    Sim.Net.send net ~src:0 ~dst:1 "slow";
    Sim.Net.send net ~src:0 ~dst:1 "fast";
    ignore (Sim.Engine.run engine);
    (* links are FIFO streams (like the prototype's TCP), so the delayed
       message holds back the one sent after it *)
    match List.rev !arrivals with
    | [ ("slow", t_slow); ("fast", t_fast) ] ->
      Alcotest.(check bool) "slow after 5s" true (t_slow >= 5.0);
      Alcotest.(check bool) "fast held back by FIFO" true (t_fast >= t_slow)
    | other ->
      Alcotest.failf "unexpected arrivals: %s"
        (String.concat ";" (List.map fst other)));

  Alcotest.test_case "crashed node is silent" `Quick (fun () ->
    let topo = Sim.Topology.uniform ~count:2 () in
    let engine = Sim.Engine.create () in
    let net = Sim.Net.create ~engine ~topo ~mac_keys:(Array.make_matrix 2 2 "k") in
    let got = ref 0 in
    Sim.Net.set_handler net 1 (fun ~src:_ _ -> incr got);
    Sim.Net.crash net 0;
    Sim.Net.send net ~src:0 ~dst:1 "from the dead";
    ignore (Sim.Engine.run engine);
    Alcotest.(check int) "nothing" 0 !got;
    (* and a crashed receiver drops input *)
    Sim.Net.crash net 1;
    Sim.Net.send net ~src:1 ~dst:0 "x";
    ignore (Sim.Engine.run engine);
    Alcotest.(check int) "still nothing" 0 !got);

  Alcotest.test_case "handler cost delays outgoing messages" `Quick (fun () ->
    let topo = Sim.Topology.uniform ~exp_ms:100.0 ~count:2 ~latency:0.01 ~jitter_frac:0.0 () in
    let engine = Sim.Engine.create () in
    let net = Sim.Net.create ~engine ~topo ~mac_keys:(Array.make_matrix 2 2 "k") in
    let reply_time = ref nan in
    Sim.Net.set_handler net 1 (fun ~src:_ _ ->
      (* charge one full 1024-bit exponentiation: 100 ms *)
      Sim.Cost.exp_full (Sim.Net.meter net 1) ~bits:1024;
      Sim.Net.send net ~src:1 ~dst:0 "reply");
    Sim.Net.set_handler net 0 (fun ~src:_ _ -> reply_time := Sim.Engine.now engine);
    Sim.Net.send net ~src:0 ~dst:1 "request";
    ignore (Sim.Engine.run engine);
    (* 0.01 out + 0.1 compute + 0.01 back *)
    Alcotest.(check (float 1e-6)) "latency + compute" 0.12 !reply_time);

  Alcotest.test_case "busy node queues messages" `Quick (fun () ->
    let topo = Sim.Topology.uniform ~exp_ms:1000.0 ~count:2 ~latency:0.001 ~jitter_frac:0.0 () in
    let engine = Sim.Engine.create () in
    let net = Sim.Net.create ~engine ~topo ~mac_keys:(Array.make_matrix 2 2 "k") in
    let times = ref [] in
    Sim.Net.set_handler net 1 (fun ~src:_ _ ->
      Sim.Cost.exp_full (Sim.Net.meter net 1) ~bits:1024;  (* 1 s each *)
      times := Sim.Engine.now engine :: !times);
    Sim.Net.send net ~src:0 ~dst:1 "a";
    Sim.Net.send net ~src:0 ~dst:1 "b";
    ignore (Sim.Engine.run engine);
    match List.rev !times with
    | [ t1; t2 ] ->
      (* second message processed only after the first's compute finishes *)
      Alcotest.(check bool) "sequential cpu" true (t2 -. t1 >= 0.999)
    | _ -> Alcotest.fail "expected two deliveries");

  Alcotest.test_case "cost model scales with key size" `Quick (fun () ->
    let full b = Sim.Cost.modexp_ms ~exp_ms:100.0 ~mod_bits:b ~exp_bits:b in
    Alcotest.(check (float 1e-9)) "1024 calibrated" 100.0 (full 1024);
    (* cubic: halving the size divides by 8 *)
    Alcotest.(check (float 1e-9)) "512" 12.5 (full 512);
    let e160 = Sim.Cost.modexp_ms ~exp_ms:100.0 ~mod_bits:1024 ~exp_bits:160 in
    Alcotest.(check (float 1e-6)) "short exponent" (100.0 *. 160.0 /. 1024.0) e160);

  Alcotest.test_case "fast-path charges undercut the exps they replace" `Quick (fun () ->
    let charge f =
      let m = Sim.Cost.create_meter ~exp_ms:100.0 in
      f m; m.Sim.Cost.charged_ms
    in
    let two_exps = charge (fun m ->
      Sim.Cost.exp m ~mod_bits:1024 ~exp_bits:160;
      Sim.Cost.exp m ~mod_bits:1024 ~exp_bits:160) in
    let one_exp2 = charge (fun m -> Sim.Cost.exp2 m ~mod_bits:1024 ~exp_bits:160) in
    (* one double exponentiation replaces TWO plain exps at ~2x their
       single cost times the multi-exp factor — strictly cheaper *)
    Alcotest.(check bool) "exp2 < 2 exps" true (one_exp2 < two_exps);
    Alcotest.(check (float 1e-9)) "exp2 factor"
      (Sim.Cost.multi_exp_factor *. Sim.Cost.modexp_ms ~exp_ms:100.0 ~mod_bits:1024 ~exp_bits:160)
      one_exp2;
    let plain = charge (fun m -> Sim.Cost.exp m ~mod_bits:1024 ~exp_bits:160) in
    let fixed = charge (fun m -> Sim.Cost.exp_fixed m ~mod_bits:1024 ~exp_bits:160) in
    Alcotest.(check bool) "fixed-base < plain" true (fixed < plain);
    Alcotest.(check (float 1e-9)) "fixed factor"
      (Sim.Cost.fixed_base_factor *. plain) fixed;
    (* the op counters classify charges correctly *)
    let m = Sim.Cost.create_meter ~exp_ms:100.0 in
    Sim.Cost.exp m ~mod_bits:1024 ~exp_bits:160;
    Sim.Cost.exp2 m ~mod_bits:1024 ~exp_bits:160;
    Sim.Cost.exp_fixed m ~mod_bits:1024 ~exp_bits:160;
    Alcotest.(check (list int)) "counters" [ 1; 1; 1 ]
      [ m.Sim.Cost.exp_count; m.Sim.Cost.exp2_count; m.Sim.Cost.fixed_count ]);

  Alcotest.test_case "paper topologies are well-formed" `Quick (fun () ->
    Alcotest.(check int) "lan n" 4 (Sim.Topology.n Sim.Topology.lan);
    Alcotest.(check int) "internet n" 4 (Sim.Topology.n Sim.Topology.internet);
    Alcotest.(check int) "combined n" 7 (Sim.Topology.n Sim.Topology.combined);
    (* RTT matrix symmetry *)
    let r = Sim.Topology.internet_rtt in
    for i = 0 to 3 do
      for j = 0 to 3 do
        if abs_float (r.(i).(j) -. r.(j).(i)) > 1e-9 then Alcotest.fail "asymmetric rtt"
      done
    done;
    (* one-way latencies are positive and RTT/2-scaled (jitter and the
       heavy tail allow up to ~3.5x) *)
    let d = Hashes.Drbg.create ~seed:"topo" in
    for _ = 1 to 50 do
      let l = Sim.Topology.internet.Sim.Topology.one_way 0 1 100 d in
      if not (l > 0.1 && l < 0.6) then Alcotest.failf "latency out of range: %f" l
    done);
]
