(* Targeted regression tests for implementation-level behaviours: state
   garbage collection vs. laggards, the model-key-size scaling that drives
   Figure 6, and the optimistic channel over lossy links. *)

open Sintra

let suite = [
  Alcotest.test_case "a lagging party catches up after others GC old rounds" `Slow
    (fun () ->
      (* Every message TO party 3 is delayed by several virtual seconds, so
         the fast trio runs many rounds ahead (and garbage-collects the old
         agreement instances) while party 3 crawls; when the delays drain,
         party 3 must still reconstruct the identical sequence from its
         buffered traffic. *)
      let c = Util.cluster ~seed:"laggard" () in
      Cluster.set_intercept c (fun ~src:_ ~dst _ ->
        if dst = 3 then Sim.Net.Delay 8.0 else Sim.Net.Deliver);
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"lag"
            ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
      in
      for k = 0 to 7 do
        Cluster.inject c 0 (fun () ->
          Atomic_channel.send chans.(0) (Printf.sprintf "g%d" k))
      done;
      ignore (Cluster.run c ~until:600.0);
      let seqs = Array.map (fun l -> List.rev !l) logs in
      Alcotest.(check int) "fast party got all" 8 (List.length seqs.(0));
      Alcotest.(check int) "laggard got all" 8 (List.length seqs.(3));
      Util.check_all_equal "identical order" (Array.to_list seqs));

  Alcotest.test_case "modeled key size drives virtual time (Figure 6 mechanism)" `Quick
    (fun () ->
      let duration model_rsa_bits =
        let cfg =
          Config.make ~tsig_scheme:Config.Multi
            ~rsa_bits:256 ~tsig_bits:256 ~dl_pbits:256 ~dl_qbits:96
            ~model_rsa_bits ~model_dl_pbits:1024 ~model_dl_qbits:160 ~n:4 ~t:1 ()
        in
        let topo = Sim.Topology.lan in
        let c = Cluster.create ~seed:"model-sweep" ~topo cfg in
        let done_at = ref 0.0 in
        let chans =
          Array.init 4 (fun i ->
            Atomic_channel.create (Cluster.runtime c i) ~pid:"ms"
              ~on_deliver:(fun ~sender:_ _ -> if i = 0 then done_at := Cluster.now c)
              ())
        in
        Cluster.inject c 1 (fun () -> Atomic_channel.send chans.(1) "probe");
        ignore (Cluster.run c ~until:600.0);
        !done_at
      in
      let t_small = duration 128 and t_big = duration 2048 in
      (* the same real crypto ran both times; only the cost model differs *)
      if not (t_big > t_small *. 1.5) then
        Alcotest.failf "model size had no effect: %f vs %f" t_small t_big);

  Alcotest.test_case "optimistic channel over 10% frame loss" `Slow (fun () ->
    let cfg = Config.test () in
    let topo = Sim.Topology.uniform ~count:4 () in
    let c = Cluster.create ~seed:"opt-lossy" ~loss:0.10 ~topo cfg in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Optimistic_channel.create ~timeout:4.0 (Cluster.runtime c i) ~pid:"ol"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    for k = 0 to 4 do
      Cluster.inject c 1 (fun () ->
        Optimistic_channel.send chans.(1) (Printf.sprintf "lossy-%d" k))
    done;
    ignore (Cluster.run c ~until:600.0);
    let seqs = Array.map (fun l -> List.rev !l) logs in
    Util.check_all_equal "agreement" (Array.to_list seqs);
    Alcotest.(check int) "all five" 5 (List.length seqs.(0)));

  Alcotest.test_case "service over the Internet topology" `Quick (fun () ->
    (* End-to-end: replicated accumulator across the WAN test-bed. *)
    let cfg =
      Config.make ~tsig_scheme:Config.Multi ~rsa_bits:256 ~tsig_bits:256
        ~dl_pbits:256 ~dl_qbits:96 ~n:4 ~t:1 ()
    in
    let c = Cluster.create ~seed:"svc-wan" ~topo:Sim.Topology.internet cfg in
    let apply acc req =
      match int_of_string_opt req with
      | Some v -> (acc + v, string_of_int (acc + v))
      | None -> (acc, "err")
    in
    let replicas =
      Array.init 4 (fun i ->
        Service.create (Cluster.runtime c i) ~pid:"acc" ~init:0 ~apply)
    in
    Cluster.inject c 0 (fun () -> ignore (Service.submit replicas.(0) "10"));
    Cluster.inject c 1 (fun () -> ignore (Service.submit replicas.(1) "32"));
    ignore (Cluster.run c ~until:300.0);
    Array.iter
      (fun r -> Alcotest.(check int) "state" 42 (Service.state r))
      replicas;
    Alcotest.(check bool) "took realistic WAN time" true (Cluster.now c > 1.0));

  Alcotest.test_case "INIT vector hashing is charged to the virtual meter" `Quick
    (fun () ->
      (* Regression: init_stmt hashes the whole encoded payload vector but
         used to skip Charge.hash, so Sim.Cost under-reported every round.
         A send on a fresh channel synchronously signs its INIT; the meter
         delta must cover one RSA signature PLUS a hash of at least the
         payload bytes — and no more than the encoded vector's few bytes of
         framing on top. *)
      let c = Util.cluster ~seed:"hash-charge" () in
      let rt = Cluster.runtime c 0 in
      let ch =
        Atomic_channel.create rt ~pid:"hc"
          ~on_deliver:(fun ~sender:_ _ -> ()) ()
      in
      let meter = rt.Runtime.charge.Charge.meter in
      let scratch () =
        { Charge.meter = Sim.Cost.create_meter ~exp_ms:meter.Sim.Cost.exp_ms;
          cfg = rt.Runtime.cfg; trace = Trace.Ctx.null () }
      in
      let rsa_only =
        let s = scratch () in
        Charge.rsa_sign s;
        s.Charge.meter.Sim.Cost.total_ms
      in
      let hash_of bytes =
        let s = scratch () in
        Charge.hash s ~bytes;
        s.Charge.meter.Sim.Cost.total_ms
      in
      let payload = String.make 2048 'p' in
      let before = meter.Sim.Cost.total_ms in
      Atomic_channel.send ch payload;
      let delta = meter.Sim.Cost.total_ms -. before in
      let floor = rsa_only +. hash_of (String.length payload) in
      let ceiling = rsa_only +. hash_of (String.length payload + 128) in
      if delta < floor then
        Alcotest.failf "INIT under-charged: %.6f ms < %.6f ms" delta floor;
      if delta > ceiling then
        Alcotest.failf "INIT over-charged: %.6f ms > %.6f ms" delta ceiling;
      Atomic_channel.abort ch);
]
