(* The schedule explorer's own test suite: planted-bug runs proving each
   oracle fires (and shrinks to a replayable minimal schedule), clean-trunk
   sweeps, equivocation adversaries, crash-recovery catch-up, and codec /
   determinism checks. *)

open Sintra

let no_tweaks = Vopr.Workload.no_tweaks

(* Run a planted-bug explorer sweep and assert: a failure is found within
   the seed budget, the expected oracle is blamed for the *shrunk* schedule,
   the shrunk schedule replays to the same verdict, and the repro line
   mentions the workload and the minimal mutations. *)
let expect_planted ~kind ~tweaks ~oracle:expected ?(seeds = 10)
    ?(expect_empty_shrink = false) () =
  let runner ~seed sched = Vopr.Workload.run ~tweaks ~kind ~seed sched in
  let oracles = Vopr.Oracle.all kind in
  let report =
    Vopr.Explorer.explore ~runner ~oracles
      ~generate:(fun ~run_seed ->
        Vopr.Explorer.schedule_of ~run_seed ~n:4 ~max_faulty:1
          ~allow_equiv:(Vopr.Workload.byz_supported kind))
      ~seed:"planted" ~seeds ()
  in
  match report.Vopr.Explorer.failures with
  | [] ->
    Alcotest.failf "planted %s bug not caught within %d seeds" expected seeds
  | f :: _ ->
    Alcotest.(check string)
      "blamed oracle" expected f.Vopr.Explorer.shrunk_outcome.Vopr.Explorer.oracle;
    if expect_empty_shrink then
      Alcotest.(check string)
        "shrinks to the empty schedule" ""
        (Vopr.Schedule.to_string f.Vopr.Explorer.shrunk);
    (* the minimal schedule must replay to the same failure *)
    (match
       Vopr.Explorer.eval ~runner ~oracles ~seed:f.Vopr.Explorer.run_seed
         f.Vopr.Explorer.shrunk
     with
     | Vopr.Explorer.Failed g ->
       Alcotest.(check string)
         "replay blames the same oracle" expected g.Vopr.Explorer.oracle
     | Vopr.Explorer.Clean ->
       Alcotest.fail "shrunk schedule replays clean");
    let line = Vopr.Explorer.repro ~workload:kind ~base_seed:"planted" f in
    let has needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    if not (has ("--workload " ^ Vopr.Oracle.kind_to_string kind) line) then
      Alcotest.failf "repro line lacks the workload: %s" line;
    if not (has (Vopr.Schedule.to_string f.Vopr.Explorer.shrunk) line) then
      Alcotest.failf "repro line lacks the minimal mutations: %s" line

let check_clean ~kind ~seeds =
  let runner ~seed sched = Vopr.Workload.run ~kind ~seed sched in
  let report =
    Vopr.Explorer.explore ~runner ~oracles:(Vopr.Oracle.all kind)
      ~generate:(fun ~run_seed ->
        Vopr.Explorer.schedule_of ~run_seed ~n:4 ~max_faulty:1
          ~allow_equiv:(Vopr.Workload.byz_supported kind))
      ~seed:"trunk" ~seeds ()
  in
  (match report.Vopr.Explorer.failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "%s trunk failed at seed %d (%s: %s)"
       (Vopr.Oracle.kind_to_string kind)
       f.Vopr.Explorer.index f.Vopr.Explorer.outcome.Vopr.Explorer.oracle
       f.Vopr.Explorer.outcome.Vopr.Explorer.reason)

let sched_of_string s =
  match Vopr.Schedule.of_string s with
  | Some sched -> sched
  | None -> Alcotest.failf "unparsable schedule %S" s

let assert_all_pass ~what (obs : Vopr.Oracle.obs) =
  List.iter
    (fun (o : Vopr.Oracle.oracle) ->
      match o.Vopr.Oracle.check obs with
      | Vopr.Oracle.Pass -> ()
      | Vopr.Oracle.Fail r ->
        Alcotest.failf "%s: oracle %s failed: %s" what o.Vopr.Oracle.name r)
    (Vopr.Oracle.all obs.Vopr.Oracle.kind)

let suite = [
  Alcotest.test_case "schedule codec: generated schedules roundtrip" `Quick
    (fun () ->
      let drbg = Hashes.Drbg.create ~seed:"codec" in
      for i = 0 to 49 do
        let s =
          Vopr.Schedule.generate ~drbg ~n:4 ~max_faulty:1 ~allow_equiv:(i mod 2 = 0)
        in
        match Vopr.Schedule.of_string (Vopr.Schedule.to_string s) with
        | Some s' when s' = s -> ()
        | Some _ ->
          Alcotest.failf "roundtrip changed %S" (Vopr.Schedule.to_string s)
        | None -> Alcotest.failf "unparsable %S" (Vopr.Schedule.to_string s)
      done;
      Alcotest.(check bool) "rejects junk" true
        (Vopr.Schedule.of_string "delay@x:3" = None
         && Vopr.Schedule.of_string "nonsense" = None
         && Vopr.Schedule.of_string "" = Some []));

  Alcotest.test_case "workload runs are deterministic" `Quick (fun () ->
    let sched = sched_of_string "delay@10:500,dup@3,drop@2>0:4" in
    let a = Vopr.Workload.run ~kind:Vopr.Oracle.Atomic ~seed:"det" sched in
    let b = Vopr.Workload.run ~kind:Vopr.Oracle.Atomic ~seed:"det" sched in
    Alcotest.(check bool) "identical observations" true (a = b));

  Alcotest.test_case "clean trunk: no oracle fires on any workload" `Quick
    (fun () ->
      check_clean ~kind:Vopr.Oracle.Reliable ~seeds:8;
      check_clean ~kind:Vopr.Oracle.Consistent ~seeds:8;
      check_clean ~kind:Vopr.Oracle.Aba ~seeds:6;
      check_clean ~kind:Vopr.Oracle.Mvba ~seeds:6;
      check_clean ~kind:Vopr.Oracle.Atomic ~seeds:4;
      check_clean ~kind:Vopr.Oracle.Secure ~seeds:3);

  Alcotest.test_case "planted liveness bug: stalled channel, empty shrink" `Quick
    (fun () ->
      let tweaks =
        { no_tweaks with
          Vopr.Workload.make_channel =
            Some (fun _rt ~party:_ ~on_deliver:_ ->
              { Vopr.Workload.send = (fun _ -> ()) }) }
      in
      expect_planted ~kind:Vopr.Oracle.Reliable ~tweaks ~oracle:"liveness"
        ~expect_empty_shrink:true ());

  Alcotest.test_case "planted agreement bug: one party mangles payloads" `Quick
    (fun () ->
      let tweaks =
        { no_tweaks with
          Vopr.Workload.wrap_deliver =
            Some (fun ~party base (s, m) ->
              if party = 0 then base (s, m ^ "?") else base (s, m)) }
      in
      expect_planted ~kind:Vopr.Oracle.Reliable ~tweaks ~oracle:"agreement"
        ~expect_empty_shrink:true ());

  Alcotest.test_case "planted integrity bug: deliveries recorded twice" `Quick
    (fun () ->
      let tweaks =
        { no_tweaks with
          Vopr.Workload.wrap_deliver =
            Some (fun ~party:_ base e -> base e; base e) }
      in
      expect_planted ~kind:Vopr.Oracle.Reliable ~tweaks ~oracle:"integrity"
        ~expect_empty_shrink:true ());

  Alcotest.test_case "planted total-order bug: first two deliveries swapped" `Quick
    (fun () ->
      let tweaks =
        { no_tweaks with
          Vopr.Workload.wrap_deliver =
            Some (fun ~party base ->
              if party <> 0 then base
              else begin
                (* hold the first delivery, emit it after the second *)
                let held = ref None and done_ = ref false in
                fun e ->
                  if !done_ then base e
                  else
                    match !held with
                    | None -> held := Some e
                    | Some first ->
                      done_ := true;
                      base e;
                      base first
              end) }
      in
      expect_planted ~kind:Vopr.Oracle.Atomic ~tweaks ~oracle:"total-order"
        ~expect_empty_shrink:true ());

  Alcotest.test_case "planted validity bug: decisions outside proposals" `Quick
    (fun () ->
      let tweaks =
        { no_tweaks with
          Vopr.Workload.unanimous = Some true;
          Vopr.Workload.flip_decisions = true }
      in
      expect_planted ~kind:Vopr.Oracle.Aba ~tweaks ~oracle:"validity" ());

  Alcotest.test_case "planted flags bug: honest party wrongly flagged" `Quick
    (fun () ->
      let tweaks = { no_tweaks with Vopr.Workload.spurious_flag = true } in
      expect_planted ~kind:Vopr.Oracle.Reliable ~tweaks ~oracle:"flags" ());

  Alcotest.test_case "regression vopr#70: atomic straggler catches up" `Quick
    (fun () ->
      (* The explorer's first real find: one long link delay plus a dead
         link stalled a party forever once its peers garbage-collected the
         round's agreement.  Fixed by the DECIDED catch-up protocol. *)
      let sched = sched_of_string "delay@35:2204,drop@3>1:0" in
      let obs = Vopr.Workload.run ~kind:Vopr.Oracle.Atomic ~seed:"vopr#70" sched in
      assert_all_pass ~what:"vopr#70" obs);

  Alcotest.test_case "equivocating CBC sender: safety holds, culprit flagged"
    `Quick (fun () ->
      let sched = [ Vopr.Schedule.Byz_equivocate 3 ] in
      let obs =
        Vopr.Workload.run ~kind:Vopr.Oracle.Consistent ~seed:"eq-cbc" sched
      in
      assert_all_pass ~what:"equivocating cbc" obs;
      let flagged_by_honest =
        List.exists
          (fun p ->
            p <> 3
            && List.exists (fun (off, _) -> off = 3) obs.Vopr.Oracle.flagged.(p))
          [ 0; 1; 2 ]
      in
      Alcotest.(check bool) "some honest party flagged party 3" true
        flagged_by_honest);

  Alcotest.test_case "equivocating ABA party: safety holds, culprit flagged"
    `Quick (fun () ->
      let sched = [ Vopr.Schedule.Byz_equivocate 0 ] in
      let obs = Vopr.Workload.run ~kind:Vopr.Oracle.Aba ~seed:"eq-aba" sched in
      assert_all_pass ~what:"equivocating aba" obs;
      let flagged_by_honest =
        List.exists
          (fun p ->
            List.exists (fun (off, _) -> off = 0) obs.Vopr.Oracle.flagged.(p))
          [ 1; 2; 3 ]
      in
      Alcotest.(check bool) "some honest party flagged party 0" true
        flagged_by_honest);

  Alcotest.test_case
    "bad-share responder (crypto-amortized): safety holds, culprit flagged"
    `Quick (fun () ->
      (* Party 3 answers every SEND with a well-formed-but-invalid echo
         share under the retransmit storm; the honest senders' echo batches
         must bisect it out, flag party 3, and still close from the honest
         quorum. *)
      let sched = [ Vopr.Schedule.Byz_equivocate 3 ] in
      let obs =
        Vopr.Workload.run ~kind:Vopr.Oracle.Amortized ~seed:"bad-share" sched
      in
      assert_all_pass ~what:"bad-share responder" obs;
      let flagged_by_honest =
        List.exists
          (fun p ->
            List.exists (fun (off, _) -> off = 3) obs.Vopr.Oracle.flagged.(p))
          [ 0; 1; 2 ]
      in
      Alcotest.(check bool) "some honest party flagged party 3" true
        flagged_by_honest);

  Alcotest.test_case "crash, rebuild, catch up: atomic order and liveness"
    `Quick (fun () ->
      let c = Util.cluster ~seed:"vopr-rebuild" ~check_invariants:true () in
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans : Atomic_channel.t option array = Array.make 4 None in
      let make p =
        let rt = Cluster.runtime c p in
        chans.(p) <-
          Some
            (Atomic_channel.create rt ~pid:"cr"
               ~on_deliver:(fun ~sender m ->
                 logs.(p) := (sender, m) :: !(logs.(p)))
               ())
      in
      for p = 0 to 3 do make p done;
      let rt2 = Cluster.runtime c 2 in
      (* The rebuild hook models restarting from empty application state:
         a fresh channel instance at round 0 and a cleared delivery log. *)
      Runtime.on_rebuild rt2 (fun () ->
        logs.(2) := [];
        make 2);
      let send p m =
        Cluster.inject c p (fun () ->
          match chans.(p) with
          | Some ch -> Atomic_channel.send ch m
          | None -> ())
      in
      for p = 0 to 3 do send p (Printf.sprintf "p%d.a" p) done;
      (* Crash after the first wave has been delivered: a crash while our
         own payload is still in flight loses it by design (volatile state),
         which is not what this scenario is about. *)
      Cluster.at c ~time:0.5 (fun () -> Runtime.crash rt2);
      Cluster.at c ~time:3.0 (fun () -> Runtime.recover rt2);
      Cluster.at c ~time:4.0 (fun () ->
        send 0 "p0.b";
        send 1 "p1.b";
        send 3 "p3.b");
      Cluster.at c ~time:4.5 (fun () -> send 2 "p2.b");
      ignore (Cluster.run c ~until:300.0);
      Alcotest.(check int) "quiesced" 0 (Sim.Engine.pending c.Cluster.engine);
      let seqs = Array.map (fun l -> List.rev !l) logs in
      (* liveness: every payload of a live sender reached every party *)
      Alcotest.(check int) "all eight payloads delivered" 8
        (List.length seqs.(0));
      (* total order: identical delivery sequences, including the rebuilt
         party's replayed history *)
      Util.check_all_equal "order after rebuild" (Array.to_list seqs));

  Alcotest.test_case "duplicated frames: protocols deliver exactly once" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"vopr-dup" ~check_invariants:true () in
      Faults.install c (Faults.duplicate_every 1);
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun p ->
          Atomic_channel.create (Cluster.runtime c p) ~pid:"dup"
            ~on_deliver:(fun ~sender m ->
              logs.(p) := (sender, m) :: !(logs.(p)))
            ())
      in
      for p = 0 to 3 do
        Cluster.inject c p (fun () ->
          Atomic_channel.send chans.(p) (Printf.sprintf "d%d" p))
      done;
      ignore (Cluster.run c ~until:300.0);
      Array.iteri
        (fun p log ->
          let l = List.rev !log in
          if List.length l <> 4 then
            Alcotest.failf "party %d delivered %d times under duplication" p
              (List.length l);
          if List.length (List.sort_uniq compare l) <> 4 then
            Alcotest.failf "party %d saw a duplicate delivery" p)
        logs;
      Util.check_all_equal "order under duplication"
        (Array.to_list (Array.map (fun l -> List.rev !l) logs)));

  Alcotest.test_case "replayed frames: protocols deliver exactly once" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"vopr-replay" ~check_invariants:true () in
      Faults.install c (Faults.replay_every 2 ~delay:0.4);
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun p ->
          Reliable_channel.create (Cluster.runtime c p) ~pid:"rp"
            ~on_deliver:(fun ~sender m ->
              logs.(p) := (sender, m) :: !(logs.(p)))
            ())
      in
      for p = 0 to 3 do
        Cluster.inject c p (fun () ->
          Reliable_channel.send chans.(p) (Printf.sprintf "r%d" p))
      done;
      ignore (Cluster.run c ~until:300.0);
      Array.iteri
        (fun p log ->
          let l = List.sort compare !log in
          if List.length l <> 4 then
            Alcotest.failf "party %d delivered %d times under replay" p
              (List.length l);
          if List.length (List.sort_uniq compare l) <> 4 then
            Alcotest.failf "party %d saw a duplicate delivery" p)
        logs);
]
