(* Tests for the threshold-cryptography layer. *)

open Crypto

let drbg = Util.drbg ~seed:"crypto-tests" ()

(* Shared fixtures (key generation dominates runtime). *)
let group = lazy (Group.generate ~drbg:(Hashes.Drbg.fork drbg "grp") ~pbits:256 ~qbits:96)

let coin_keys =
  lazy (Threshold_coin.deal ~drbg:(Hashes.Drbg.fork drbg "coin") ~group:(Lazy.force group)
          ~n:4 ~k:2 ~t:1)

let tsig_keys =
  lazy (Threshold_sig.deal ~drbg:(Hashes.Drbg.fork drbg "tsig") ~modulus_bits:256
          ~nparties:4 ~k:3 ~t:1 ())

let msig_keys =
  lazy (Multi_sig.deal ~drbg:(Hashes.Drbg.fork drbg "msig") ~modulus_bits:256
          ~nparties:4 ~k:3 ~t:1 ())

let enc_keys =
  lazy (Threshold_enc.deal ~drbg:(Hashes.Drbg.fork drbg "enc") ~group:(Lazy.force group)
          ~n:4 ~k:2 ~t:1)

let rsa_key = lazy (Rsa.keygen ~drbg:(Hashes.Drbg.fork drbg "rsa") ~bits:256 ())

let nat = Alcotest.testable Bignum.Nat.pp Bignum.Nat.equal

let group_tests = [
  Alcotest.test_case "group law" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "law" in
    let a = Group.pow_g g (Group.random_exponent g ~drbg:d) in
    let b = Group.pow_g g (Group.random_exponent g ~drbg:d) in
    Alcotest.check nat "commute" (Group.mul g a b) (Group.mul g b a);
    Alcotest.check nat "identity" a (Group.mul g a (Group.one g));
    Alcotest.check nat "inverse" (Group.one g) (Group.mul g a (Group.inv g a));
    Alcotest.check nat "div" b (Group.div g (Group.mul g a b) a));

  Alcotest.test_case "pow laws" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "pow" in
    let x = Group.random_exponent g ~drbg:d in
    let y = Group.random_exponent g ~drbg:d in
    let gx = Group.pow_g g x in
    Alcotest.check nat "g^x^y = g^y^x"
      (Group.pow g gx y) (Group.pow g (Group.pow_g g y) x);
    Alcotest.check nat "members have order q"
      (Group.one g) (Group.pow g gx g.Group.q));

  Alcotest.test_case "membership" `Quick (fun () ->
    let g = Lazy.force group in
    Alcotest.(check bool) "generator" true (Group.is_member g g.Group.g);
    Alcotest.(check bool) "zero" false (Group.is_member g Bignum.Nat.zero);
    Alcotest.(check bool) "p" false (Group.is_member g g.Group.p);
    (* an element outside the order-q subgroup *)
    let outside = Bignum.Nat.of_int 2 in
    let member = Group.is_member g outside in
    let check = Bignum.Nat.equal (Bignum.Nat.powmod outside g.Group.q g.Group.p) Bignum.Nat.one in
    Alcotest.(check bool) "subgroup test consistent" check member);

  Alcotest.test_case "hash_to_group lands in subgroup" `Quick (fun () ->
    let g = Lazy.force group in
    List.iter
      (fun s ->
        let e = Group.hash_to_group g s in
        Alcotest.(check bool) s true (Group.is_member g e))
      [ ""; "a"; "coin|42"; String.make 1000 'z' ];
    Alcotest.(check bool) "distinct inputs distinct points" true
      (not (Bignum.Nat.equal (Group.hash_to_group g "a") (Group.hash_to_group g "b")));
    Alcotest.check nat "deterministic" (Group.hash_to_group g "a") (Group.hash_to_group g "a"));

  Alcotest.test_case "hash_to_exponent below q" `Quick (fun () ->
    let g = Lazy.force group in
    for i = 0 to 20 do
      let e = Group.hash_to_exponent g [ "x"; string_of_int i ] in
      if Bignum.Nat.compare e g.Group.q >= 0 then Alcotest.fail "exponent out of range"
    done);

  Alcotest.test_case "elt bytes roundtrip" `Quick (fun () ->
    let g = Lazy.force group in
    let e = Group.hash_to_group g "roundtrip" in
    Alcotest.check nat "same" e (Group.elt_of_bytes (Group.elt_to_bytes g e)));
]

let fastpath_tests = [
  Alcotest.test_case "mul_exp2 equals product of powers" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "exp2" in
    for _ = 1 to 10 do
      let a = Group.pow_g g (Group.random_exponent g ~drbg:d) in
      let b = Group.pow_g g (Group.random_exponent g ~drbg:d) in
      let ea = Group.random_exponent g ~drbg:d in
      let eb = Group.random_exponent g ~drbg:d in
      Alcotest.check nat "a^ea * b^eb"
        (Group.mul g (Group.pow g a ea) (Group.pow g b eb))
        (Group.mul_exp2 g a ea b eb)
    done);

  Alcotest.test_case "precompute table matches plain pow" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "tbl" in
    let a = Group.pow_g g (Group.random_exponent g ~drbg:d) in
    let tbl = Group.precompute g a in
    for _ = 1 to 10 do
      let e = Group.random_exponent g ~drbg:d in
      Alcotest.check nat "a^e" (Group.pow g a e) (Group.pow_table tbl e)
    done;
    (* the group's own generator table agrees with pow_g *)
    let e = Group.random_exponent g ~drbg:d in
    Alcotest.check nat "g table" (Group.pow_g g e) (Group.pow_table g.Group.g_tbl e));

  Alcotest.test_case "dleq fast verify == reference verify" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "dleq-eq" in
    for i = 1 to 10 do
      let x = Group.random_exponent g ~drbg:d in
      let g2 = Group.hash_to_group g (Printf.sprintf "base-%d" i) in
      let h1 = Group.pow_g g x and h2 = Group.pow g g2 x in
      let h1_tbl = Group.precompute g h1 in
      let ctx = Printf.sprintf "ctx-%d" i in
      let pf = Dleq.prove g ~drbg:d ~ctx ~g1:g.Group.g ~h1 ~g2 ~h2 ~x in
      (* honest proofs: both verifiers accept *)
      List.iter
        (fun (label, ok) -> Alcotest.(check bool) label true ok)
        [ "fast", Dleq.verify g ~ctx ~g1:g.Group.g ~h1 ~g2 ~h2 pf;
          "fast+tbl", Dleq.verify g ~ctx ~h1_tbl ~g1:g.Group.g ~h1 ~g2 ~h2 pf;
          "reference", Dleq.verify_reference g ~ctx ~g1:g.Group.g ~h1 ~g2 ~h2 pf ];
      (* forged proofs: both verifiers agree (and reject) *)
      let tweak = Bignum.Nat.rem (Bignum.Nat.add pf.Dleq.response Bignum.Nat.one) g.Group.q in
      let forged = [
        { pf with Dleq.response = tweak };
        { pf with Dleq.a1 = Group.mul g pf.Dleq.a1 g.Group.g };
        { pf with Dleq.a2 = Group.mul g pf.Dleq.a2 g.Group.g };
        { Dleq.a1 = Group.one g; a2 = Group.one g; response = Bignum.Nat.zero };
      ] in
      List.iter
        (fun bad ->
          let fast = Dleq.verify g ~ctx ~h1_tbl ~g1:g.Group.g ~h1 ~g2 ~h2 bad in
          let slow = Dleq.verify_reference g ~ctx ~g1:g.Group.g ~h1 ~g2 ~h2 bad in
          Alcotest.(check bool) "verifiers agree" slow fast;
          Alcotest.(check bool) "forgery rejected" false fast)
        forged
    done);

  Alcotest.test_case "make rejects an even modulus" `Quick (fun () ->
    (* Montgomery arithmetic needs gcd(p, 2^64) = 1; Group.make must refuse
       an even p before any table is built on top of it. *)
    let even_p = Bignum.Nat.of_int 22 and q = Bignum.Nat.of_int 7 in
    Alcotest.check_raises "even p"
      (Invalid_argument "Group.make: modulus must be odd")
      (fun () -> ignore (Group.make ~p:even_p ~q ~g:(Bignum.Nat.of_int 2))));
]

let shamir_tests = [
  Alcotest.test_case "interpolation recovers secret" `Quick (fun () ->
    let q = (Lazy.force group).Group.q in
    let secret = Bignum.Nat.of_int 424242 in
    let shares =
      Shamir.share_secret ~drbg:(Hashes.Drbg.fork drbg "sh1") ~modulus:q ~secret ~n:5 ~k:3
    in
    let open Shamir in
    (* every 3-subset recovers the secret *)
    let subsets = [ [0;1;2]; [0;2;4]; [1;3;4]; [2;3;4] ] in
    List.iter
      (fun idx ->
        let sel = List.map (fun i -> shares.(i)) idx in
        Alcotest.check nat "recovered" secret (interpolate ~modulus:q ~shares:sel ~at:0))
      subsets);

  Alcotest.test_case "k-1 shares give a different polynomial" `Quick (fun () ->
    let q = (Lazy.force group).Group.q in
    let secret = Bignum.Nat.of_int 7 in
    let shares =
      Shamir.share_secret ~drbg:(Hashes.Drbg.fork drbg "sh2") ~modulus:q ~secret ~n:5 ~k:3
    in
    (* interpolating only 2 shares yields the line through them - almost
       surely not the secret *)
    let sel = [ shares.(0); shares.(1) ] in
    Alcotest.(check bool) "wrong" false
      (Bignum.Nat.equal secret (Shamir.interpolate ~modulus:q ~shares:sel ~at:0)));

  Alcotest.test_case "interpolate at share points" `Quick (fun () ->
    let q = (Lazy.force group).Group.q in
    let secret = Bignum.Nat.of_int 99 in
    let shares =
      Shamir.share_secret ~drbg:(Hashes.Drbg.fork drbg "sh3") ~modulus:q ~secret ~n:4 ~k:2
    in
    let sel = [ shares.(1); shares.(3) ] in
    Alcotest.check nat "f(1)" shares.(0).Shamir.value
      (Shamir.interpolate ~modulus:q ~shares:sel ~at:1));

  Alcotest.test_case "rejects bad parameters" `Quick (fun () ->
    let q = (Lazy.force group).Group.q in
    Alcotest.check_raises "k > n" (Invalid_argument "Shamir.share_secret: need 1 <= k <= n")
      (fun () ->
        ignore
          (Shamir.share_secret ~drbg ~modulus:q ~secret:Bignum.Nat.one ~n:3 ~k:4)));

  Alcotest.test_case "integer lagrange coefficients are integral" `Quick (fun () ->
    (* Delta-scaled coefficients must divide exactly for every subset. *)
    List.iter
      (fun points ->
        List.iter
          (fun j ->
            ignore (Shamir.integer_lagrange_coeff ~n:7 ~points ~j ~at:0))
          points)
      [ [1;2;3]; [2;4;6]; [1;5;7]; [3;4;5;6;7] ]);

  Alcotest.test_case "delta is n!" `Quick (fun () ->
    Alcotest.check nat "5!" (Bignum.Nat.of_int 120) (Shamir.delta 5);
    Alcotest.check nat "1" Bignum.Nat.one (Shamir.delta 1));
]

let dleq_tests = [
  Alcotest.test_case "honest proof verifies" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "dleq1" in
    let x = Group.random_exponent g ~drbg:d in
    let g2 = Group.hash_to_group g "second base" in
    let h1 = Group.pow_g g x and h2 = Group.pow g g2 x in
    let proof = Dleq.prove g ~drbg:d ~ctx:"c" ~g1:g.Group.g ~h1 ~g2 ~h2 ~x in
    Alcotest.(check bool) "ok" true
      (Dleq.verify g ~ctx:"c" ~g1:g.Group.g ~h1 ~g2 ~h2 proof));

  Alcotest.test_case "wrong statement rejected" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "dleq2" in
    let x = Group.random_exponent g ~drbg:d in
    let y = Group.random_exponent g ~drbg:d in
    let g2 = Group.hash_to_group g "second base" in
    let h1 = Group.pow_g g x and h2 = Group.pow g g2 y in (* unequal logs *)
    let proof = Dleq.prove g ~drbg:d ~ctx:"c" ~g1:g.Group.g ~h1 ~g2 ~h2 ~x in
    Alcotest.(check bool) "rejected" false
      (Dleq.verify g ~ctx:"c" ~g1:g.Group.g ~h1 ~g2 ~h2 proof));

  Alcotest.test_case "context separation" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "dleq3" in
    let x = Group.random_exponent g ~drbg:d in
    let g2 = Group.hash_to_group g "second base" in
    let h1 = Group.pow_g g x and h2 = Group.pow g g2 x in
    let proof = Dleq.prove g ~drbg:d ~ctx:"ctx-A" ~g1:g.Group.g ~h1 ~g2 ~h2 ~x in
    Alcotest.(check bool) "other ctx rejected" false
      (Dleq.verify g ~ctx:"ctx-B" ~g1:g.Group.g ~h1 ~g2 ~h2 proof));

  Alcotest.test_case "serialization roundtrip" `Quick (fun () ->
    let g = Lazy.force group in
    let d = Hashes.Drbg.fork drbg "dleq4" in
    let x = Group.random_exponent g ~drbg:d in
    let g2 = Group.hash_to_group g "second base" in
    let h1 = Group.pow_g g x and h2 = Group.pow g g2 x in
    let proof = Dleq.prove g ~drbg:d ~ctx:"c" ~g1:g.Group.g ~h1 ~g2 ~h2 ~x in
    match Dleq.of_bytes g (Dleq.to_bytes g proof) with
    | None -> Alcotest.fail "roundtrip failed"
    | Some p ->
      Alcotest.(check bool) "still verifies" true
        (Dleq.verify g ~ctx:"c" ~g1:g.Group.g ~h1 ~g2 ~h2 p));
]

let coin_tests =
  let release i name =
    let keys = Lazy.force coin_keys in
    Threshold_coin.release ~drbg:(Hashes.Drbg.fork drbg (Printf.sprintf "c%d%s" i name))
      keys.Threshold_coin.public keys.Threshold_coin.shares.(i) ~name
  in
  [
    Alcotest.test_case "shares verify" `Quick (fun () ->
      let keys = Lazy.force coin_keys in
      for i = 0 to 3 do
        Alcotest.(check bool) (string_of_int i) true
          (Threshold_coin.verify_share keys.Threshold_coin.public ~name:"n1" (release i "n1"))
      done);

    Alcotest.test_case "share for another coin rejected" `Quick (fun () ->
      let keys = Lazy.force coin_keys in
      Alcotest.(check bool) "cross-name" false
        (Threshold_coin.verify_share keys.Threshold_coin.public ~name:"n2" (release 0 "n1")));

    Alcotest.test_case "all k-subsets agree" `Quick (fun () ->
      let keys = Lazy.force coin_keys in
      let pub = keys.Threshold_coin.public in
      let shares = List.init 4 (fun i -> release i "flip") in
      let value pair = Threshold_coin.assemble pub ~name:"flip" pair ~len:16 in
      let pairs =
        [ [List.nth shares 0; List.nth shares 1];
          [List.nth shares 0; List.nth shares 2];
          [List.nth shares 1; List.nth shares 3];
          [List.nth shares 2; List.nth shares 3] ]
      in
      let values = List.map value pairs in
      Util.check_all_equal "coin value" values);

    Alcotest.test_case "different names give independent coins" `Quick (fun () ->
      let keys = Lazy.force coin_keys in
      let pub = keys.Threshold_coin.public in
      let v name = Threshold_coin.assemble pub ~name [ release 0 name; release 1 name ] ~len:16 in
      Alcotest.(check bool) "differ" true (v "name-a" <> v "name-b"));

    Alcotest.test_case "insufficient shares rejected" `Quick (fun () ->
      let keys = Lazy.force coin_keys in
      let pub = keys.Threshold_coin.public in
      Alcotest.check_raises "1 < k"
        (Invalid_argument "Threshold_coin.assemble: not enough distinct shares")
        (fun () -> ignore (Threshold_coin.assemble pub ~name:"x" [ release 0 "x" ] ~len:1)));

    Alcotest.test_case "duplicate origins do not count twice" `Quick (fun () ->
      let keys = Lazy.force coin_keys in
      let pub = keys.Threshold_coin.public in
      let s = release 0 "dup" in
      Alcotest.check_raises "dup"
        (Invalid_argument "Threshold_coin.assemble: not enough distinct shares")
        (fun () -> ignore (Threshold_coin.assemble pub ~name:"dup" [ s; s ] ~len:1)));

    Alcotest.test_case "tampered share rejected" `Quick (fun () ->
      let keys = Lazy.force coin_keys in
      let pub = keys.Threshold_coin.public in
      let s = release 0 "tamper" in
      let bad = { s with Threshold_coin.value = Group.pow pub.Threshold_coin.group s.Threshold_coin.value (Bignum.Nat.of_int 2) } in
      Alcotest.(check bool) "rejected" false
        (Threshold_coin.verify_share pub ~name:"tamper" bad));

    Alcotest.test_case "coin bits are roughly balanced" `Quick (fun () ->
      let keys = Lazy.force coin_keys in
      let pub = keys.Threshold_coin.public in
      let ones = ref 0 in
      for i = 0 to 99 do
        let name = Printf.sprintf "bal-%d" i in
        if Threshold_coin.assemble_bit pub ~name [ release 0 name; release 1 name ]
        then incr ones
      done;
      if !ones < 25 || !ones > 75 then
        Alcotest.failf "coin badly biased: %d/100 ones" !ones);
  ]

let rsa_tests = [
  Alcotest.test_case "sign/verify roundtrip" `Quick (fun () ->
    let sk = Lazy.force rsa_key in
    let s = Rsa.sign sk ~ctx:"ctx" "message" in
    Alcotest.(check bool) "ok" true (Rsa.verify sk.Rsa.pub ~ctx:"ctx" ~signature:s "message");
    Alcotest.(check bool) "wrong msg" false
      (Rsa.verify sk.Rsa.pub ~ctx:"ctx" ~signature:s "other");
    Alcotest.(check bool) "wrong ctx" false
      (Rsa.verify sk.Rsa.pub ~ctx:"ctx2" ~signature:s "message"));

  Alcotest.test_case "signature length and garbage rejection" `Quick (fun () ->
    let sk = Lazy.force rsa_key in
    let s = Rsa.sign sk ~ctx:"c" "m" in
    Alcotest.(check int) "length" (Rsa.signature_bytes sk.Rsa.pub) (String.length s);
    Alcotest.(check bool) "short" false
      (Rsa.verify sk.Rsa.pub ~ctx:"c" ~signature:"short" "m");
    Alcotest.(check bool) "zeros" false
      (Rsa.verify sk.Rsa.pub ~ctx:"c" ~signature:(String.make (String.length s) '\000') "m"));

  Alcotest.test_case "crt power equals plain power" `Quick (fun () ->
    let sk = Lazy.force rsa_key in
    let x = Bignum.Nat.of_int 123456789 in
    Alcotest.check nat "equal"
      (Bignum.Nat.powmod x sk.Rsa.d sk.Rsa.pub.Rsa.n)
      (Rsa.crt_power sk x));

  Alcotest.test_case "fdh stays below modulus" `Quick (fun () ->
    let sk = Lazy.force rsa_key in
    for i = 0 to 20 do
      let h = Rsa.fdh sk.Rsa.pub ~ctx:"c" (string_of_int i) in
      if Bignum.Nat.compare h sk.Rsa.pub.Rsa.n >= 0 then Alcotest.fail "fdh out of range"
    done);
]

let tsig_tests =
  let release i msg =
    let keys = Lazy.force tsig_keys in
    Threshold_sig.release ~drbg:(Hashes.Drbg.fork drbg (Printf.sprintf "t%d%s" i msg))
      keys.Threshold_sig.public keys.Threshold_sig.shares.(i) ~ctx:"pid" msg
  in
  [
    Alcotest.test_case "shares verify, cross-message rejected" `Quick (fun () ->
      let keys = Lazy.force tsig_keys in
      let pub = keys.Threshold_sig.public in
      let s = release 0 "m" in
      Alcotest.(check bool) "good" true (Threshold_sig.verify_share pub ~ctx:"pid" "m" s);
      Alcotest.(check bool) "wrong msg" false (Threshold_sig.verify_share pub ~ctx:"pid" "m2" s);
      Alcotest.(check bool) "wrong ctx" false (Threshold_sig.verify_share pub ~ctx:"pid2" "m" s));

    Alcotest.test_case "assembled signature is standard RSA and subset-independent" `Quick
      (fun () ->
        let keys = Lazy.force tsig_keys in
        let pub = keys.Threshold_sig.public in
        let shares = List.init 4 (fun i -> release i "payload") in
        let pick idx = List.map (List.nth shares) idx in
        let s1 = Threshold_sig.assemble pub ~ctx:"pid" "payload" (pick [0;1;2]) in
        let s2 = Threshold_sig.assemble pub ~ctx:"pid" "payload" (pick [1;2;3]) in
        let s3 = Threshold_sig.assemble pub ~ctx:"pid" "payload" (pick [0;2;3]) in
        (* x^d mod n is unique, so different share subsets must produce the
           identical standard RSA signature. *)
        Alcotest.(check string) "subset independence 1" s1 s2;
        Alcotest.(check string) "subset independence 2" s1 s3;
        Alcotest.(check bool) "verifies" true
          (Threshold_sig.verify pub ~ctx:"pid" ~signature:s1 "payload");
        (* and it verifies as a plain RSA signature under (n, e) *)
        Alcotest.(check bool) "plain RSA" true
          (Rsa.verify { Rsa.n = pub.Threshold_sig.n_mod; e = pub.Threshold_sig.e }
             ~ctx:"pid" ~signature:s1 "payload"));

    Alcotest.test_case "too few shares rejected" `Quick (fun () ->
      let keys = Lazy.force tsig_keys in
      let pub = keys.Threshold_sig.public in
      Alcotest.check_raises "2 < 3"
        (Invalid_argument "Threshold_sig.assemble: not enough distinct shares")
        (fun () ->
          ignore (Threshold_sig.assemble pub ~ctx:"pid" "m" [ release 0 "m"; release 1 "m" ])));

    Alcotest.test_case "forged share rejected" `Quick (fun () ->
      let keys = Lazy.force tsig_keys in
      let pub = keys.Threshold_sig.public in
      let s = release 1 "m" in
      let bad = { s with Threshold_sig.x_i = Bignum.Nat.add s.Threshold_sig.x_i Bignum.Nat.one } in
      Alcotest.(check bool) "rejected" false
        (Threshold_sig.verify_share pub ~ctx:"pid" "m" bad);
      (* claiming another origin also fails: the verification key differs *)
      let stolen = { s with Threshold_sig.origin = 3 } in
      Alcotest.(check bool) "stolen origin" false
        (Threshold_sig.verify_share pub ~ctx:"pid" "m" stolen));
  ]

let msig_tests =
  let release i msg =
    let keys = Lazy.force msig_keys in
    Multi_sig.release keys.Multi_sig.public keys.Multi_sig.shares.(i) ~ctx:"pid" msg
  in
  [
    Alcotest.test_case "multi-signature roundtrip" `Quick (fun () ->
      let keys = Lazy.force msig_keys in
      let pub = keys.Multi_sig.public in
      let shares = [ release 0 "m"; release 2 "m"; release 3 "m" ] in
      List.iter
        (fun s ->
          Alcotest.(check bool) "share ok" true (Multi_sig.verify_share pub ~ctx:"pid" "m" s))
        shares;
      let sig_ = Multi_sig.assemble pub ~ctx:"pid" "m" shares in
      Alcotest.(check bool) "verifies" true (Multi_sig.verify pub ~ctx:"pid" ~signature:sig_ "m");
      Alcotest.(check bool) "wrong msg" false
        (Multi_sig.verify pub ~ctx:"pid" ~signature:sig_ "m'"));

    Alcotest.test_case "predicted size matches" `Quick (fun () ->
      let keys = Lazy.force msig_keys in
      let pub = keys.Multi_sig.public in
      let sig_ = Multi_sig.assemble pub ~ctx:"pid" "m" [ release 0 "m"; release 1 "m"; release 2 "m" ] in
      Alcotest.(check int) "size" (Multi_sig.signature_bytes pub) (String.length sig_));

    Alcotest.test_case "garbage and duplicates rejected" `Quick (fun () ->
      let keys = Lazy.force msig_keys in
      let pub = keys.Multi_sig.public in
      Alcotest.(check bool) "garbage" false
        (Multi_sig.verify pub ~ctx:"pid" ~signature:"zzzz" "m");
      (* duplicated origins must not reach the threshold *)
      let s0 = release 0 "m" and s1 = release 1 "m" in
      let forged =
        Multi_sig.assemble { pub with Multi_sig.k = 2 } ~ctx:"pid" "m" [ s0; s1 ]
      in
      Alcotest.(check bool) "only 2 distinct" false
        (Multi_sig.verify pub ~ctx:"pid" ~signature:forged "m"));
  ]

let enc_tests =
  let dec_share i ct =
    let keys = Lazy.force enc_keys in
    Threshold_enc.dec_share ~drbg:(Hashes.Drbg.fork drbg (Printf.sprintf "d%d" i))
      keys.Threshold_enc.public keys.Threshold_enc.shares.(i) ct
  in
  [
    Alcotest.test_case "encrypt/decrypt roundtrip" `Quick (fun () ->
      let keys = Lazy.force enc_keys in
      let pub = keys.Threshold_enc.public in
      let ct = Threshold_enc.encrypt ~drbg:(Hashes.Drbg.fork drbg "e1") pub ~label:"L" "the plaintext" in
      Alcotest.(check bool) "valid" true (Threshold_enc.ciphertext_valid pub ct);
      match dec_share 0 ct, dec_share 2 ct with
      | Some d0, Some d2 ->
        Alcotest.(check bool) "share0" true (Threshold_enc.verify_dec_share pub ct d0);
        Alcotest.(check bool) "share2" true (Threshold_enc.verify_dec_share pub ct d2);
        (match Threshold_enc.combine pub ct [ d0; d2 ] with
         | Some m -> Alcotest.(check string) "plaintext" "the plaintext" m
         | None -> Alcotest.fail "combine failed")
      | _ -> Alcotest.fail "dec_share failed");

    Alcotest.test_case "subset independence" `Quick (fun () ->
      let keys = Lazy.force enc_keys in
      let pub = keys.Threshold_enc.public in
      let ct = Threshold_enc.encrypt ~drbg:(Hashes.Drbg.fork drbg "e2") pub ~label:"L" "msg!" in
      let ds = List.filter_map (fun i -> dec_share i ct) [ 0; 1; 2; 3 ] in
      let m pair = Threshold_enc.combine pub ct pair in
      let pairs =
        [ [List.nth ds 0; List.nth ds 1]; [List.nth ds 1; List.nth ds 2];
          [List.nth ds 0; List.nth ds 3] ]
      in
      List.iter
        (fun p -> Alcotest.(check (option string)) "same" (Some "msg!") (m p))
        pairs);

    Alcotest.test_case "tampered ciphertext rejected (CCA)" `Quick (fun () ->
      let keys = Lazy.force enc_keys in
      let pub = keys.Threshold_enc.public in
      let ct = Threshold_enc.encrypt ~drbg:(Hashes.Drbg.fork drbg "e3") pub ~label:"L" "secret" in
      let flip (s : string) =
        let b = Bytes.of_string s in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
        Bytes.to_string b
      in
      Alcotest.(check bool) "payload tamper" false
        (Threshold_enc.ciphertext_valid pub { ct with Threshold_enc.c = flip ct.Threshold_enc.c });
      Alcotest.(check bool) "label tamper" false
        (Threshold_enc.ciphertext_valid pub { ct with Threshold_enc.label = "L2" });
      Alcotest.(check bool) "u tamper" false
        (Threshold_enc.ciphertext_valid pub
           { ct with Threshold_enc.u = Group.pow pub.Threshold_enc.group ct.Threshold_enc.u (Bignum.Nat.of_int 2) });
      (* decryption shares are refused for invalid ciphertexts *)
      Alcotest.(check bool) "no share" true
        (dec_share 0 { ct with Threshold_enc.label = "L2" } = None));

    Alcotest.test_case "forged decryption share rejected" `Quick (fun () ->
      let keys = Lazy.force enc_keys in
      let pub = keys.Threshold_enc.public in
      let ct = Threshold_enc.encrypt ~drbg:(Hashes.Drbg.fork drbg "e4") pub ~label:"L" "x" in
      match dec_share 0 ct with
      | None -> Alcotest.fail "no share"
      | Some d ->
        let bad = { d with Threshold_enc.u_i = Group.pow pub.Threshold_enc.group d.Threshold_enc.u_i (Bignum.Nat.of_int 3) } in
        Alcotest.(check bool) "rejected" false (Threshold_enc.verify_dec_share pub ct bad));

    Alcotest.test_case "ciphertext serialization roundtrip" `Quick (fun () ->
      let keys = Lazy.force enc_keys in
      let pub = keys.Threshold_enc.public in
      let ct = Threshold_enc.encrypt ~drbg:(Hashes.Drbg.fork drbg "e5") pub ~label:"lbl" "round trip" in
      match Threshold_enc.ciphertext_of_bytes (Threshold_enc.ciphertext_to_bytes pub ct) with
      | None -> Alcotest.fail "decode failed"
      | Some ct' ->
        Alcotest.(check bool) "equal" true (ct = ct');
        Alcotest.(check bool) "still valid" true (Threshold_enc.ciphertext_valid pub ct'));

    Alcotest.test_case "empty and large messages" `Quick (fun () ->
      let keys = Lazy.force enc_keys in
      let pub = keys.Threshold_enc.public in
      List.iter
        (fun msg ->
          let ct = Threshold_enc.encrypt ~drbg:(Hashes.Drbg.fork drbg "e6") pub ~label:"L" msg in
          let ds = List.filter_map (fun i -> dec_share i ct) [ 1; 3 ] in
          Alcotest.(check (option string)) (Printf.sprintf "len %d" (String.length msg))
            (Some msg) (Threshold_enc.combine pub ct ds))
        [ ""; String.make 5000 'q' ]);
  ]

let suite =
  group_tests @ fastpath_tests @ shamir_tests @ dleq_tests @ coin_tests
  @ rsa_tests @ tsig_tests @ msig_tests @ enc_tests
