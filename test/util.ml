(* Shared helpers for the test suites. *)

open Sintra

let default_topo ?(count = 4) () = Sim.Topology.uniform ~count ()

(* Dealers dominate test start-up cost; memoize clusters' key material by
   (seed, n, t, scheme). *)
let dealer_cache : (string, Dealer.t) Hashtbl.t = Hashtbl.create 8

let cluster ?(seed = "test") ?(n = 4) ?(t = 1) ?(tsig_scheme = Config.Multi)
    ?(perm_mode = Config.Fixed) ?batch_size ?max_batch ?pipeline_depth
    ?adaptive_batch ?check_invariants ?topo () : Cluster.t =
  let cfg =
    Config.test ~n ~t ~tsig_scheme ~perm_mode ?batch_size ?max_batch
      ?pipeline_depth ?adaptive_batch ?check_invariants ()
  in
  let topo = match topo with Some tp -> tp | None -> default_topo ~count:n () in
  let key =
    Printf.sprintf "%s|%d|%d|%s" seed n t
      (match tsig_scheme with Config.Shoup -> "shoup" | Config.Multi -> "multi")
  in
  match Hashtbl.find_opt dealer_cache key with
  | Some dealer ->
    let engine = Sim.Engine.create ~seed:("engine|" ^ seed) () in
    let net =
      Sim.Net.create ~engine ~topo ~mac_keys:(Dealer.net_mac_keys dealer)
    in
    let runtimes =
      Array.init n (fun i ->
        Runtime.create ~engine ~net ~cfg ~keys:dealer.Dealer.parties.(i))
    in
    { Cluster.engine; net; cfg; dealer; runtimes }
  | None ->
    let c = Cluster.create ~seed ~topo cfg in
    Hashtbl.replace dealer_cache key c.Cluster.dealer;
    c

let check_all_equal (name : string) (values : 'a list) : unit =
  match values with
  | [] -> ()
  | first :: rest ->
    List.iteri
      (fun i v ->
        if v <> first then
          Alcotest.failf "%s: party %d disagrees with party 0" name (i + 1))
      rest

let drbg ?(seed = "test-rng") () = Hashes.Drbg.create ~seed

(* A deterministic qcheck-friendly byte source. *)
let random_bytes ?(seed = "test-rng") () = Hashes.Drbg.random_bytes (drbg ~seed ())
