(* Shared helpers for the test suites. *)

open Sintra

let default_topo ?(count = 4) () = Sim.Topology.uniform ~count ()

(* Dealers dominate test start-up cost; memoize clusters' key material by
   (seed, n, t, scheme). *)
let dealer_cache : (string, Dealer.t) Hashtbl.t = Hashtbl.create 8

let cluster ?(seed = "test") ?(n = 4) ?(t = 1) ?(tsig_scheme = Config.Multi)
    ?(perm_mode = Config.Fixed) ?batch_size ?max_batch ?pipeline_depth
    ?adaptive_batch ?check_invariants ?batch_verify ?share_cache ?coin_pregen
    ?share_cache_cap ?topo () : Cluster.t =
  let cfg =
    Config.test ~n ~t ~tsig_scheme ~perm_mode ?batch_size ?max_batch
      ?pipeline_depth ?adaptive_batch ?check_invariants ?batch_verify
      ?share_cache ?coin_pregen ?share_cache_cap ()
  in
  let topo = match topo with Some tp -> tp | None -> default_topo ~count:n () in
  let key =
    Printf.sprintf "%s|%d|%d|%s" seed n t
      (match tsig_scheme with Config.Shoup -> "shoup" | Config.Multi -> "multi")
  in
  match Hashtbl.find_opt dealer_cache key with
  | Some dealer ->
    let engine = Sim.Engine.create ~seed:("engine|" ^ seed) () in
    let net =
      Sim.Net.create ~engine ~topo ~mac_keys:(Dealer.net_mac_keys dealer)
    in
    let runtimes =
      Array.init n (fun i ->
        Runtime.create ~engine ~net ~cfg ~keys:dealer.Dealer.parties.(i))
    in
    { Cluster.engine; net; cfg; dealer; runtimes }
  | None ->
    let c = Cluster.create ~seed ~topo cfg in
    Hashtbl.replace dealer_cache key c.Cluster.dealer;
    c

let check_all_equal (name : string) (values : 'a list) : unit =
  match values with
  | [] -> ()
  | first :: rest ->
    List.iteri
      (fun i v ->
        if v <> first then
          Alcotest.failf "%s: party %d disagrees with party 0" name (i + 1))
      rest

let drbg ?(seed = "test-rng") () = Hashes.Drbg.create ~seed

(* A deterministic qcheck-friendly byte source. *)
let random_bytes ?(seed = "test-rng") () = Hashes.Drbg.random_bytes (drbg ~seed ())

(* --- generators for the crypto-equivalence harness (test_amortized) ---

   A batch plan is one randomized verification batch: a list of slot codes,
   0 for an honest share and 1..mutations for a forgery kind the consumer
   maps to a concrete bad share.  Drawing plans from a seeded drbg keeps
   the multi-hundred-case sweeps fully deterministic and reproducible. *)

(* Mixed accept/reject plans: about two thirds honest slots, so both batch
   verdicts stay populated across a sweep. *)
let batch_plans ~(drbg : Hashes.Drbg.t) ~(cases : int) ~(max_size : int)
    ~(mutations : int) : int list list =
  List.init cases (fun _ ->
    let size = 1 + Hashes.Drbg.int drbg max_size in
    List.init size (fun _ ->
      if Hashes.Drbg.int drbg 3 < 2 then 0
      else 1 + Hashes.Drbg.int drbg mutations))

(* Planted-forgery plans: every case plants at least one bad slot (plus a
   sprinkle more), so bisection always has indices to isolate. *)
let planted_plans ~(drbg : Hashes.Drbg.t) ~(cases : int) ~(max_size : int)
    ~(mutations : int) : int list list =
  List.init cases (fun _ ->
    let size = 1 + Hashes.Drbg.int drbg max_size in
    let forced = Hashes.Drbg.int drbg size in
    List.init size (fun i ->
      if i = forced || Hashes.Drbg.int drbg 4 = 0 then
        1 + Hashes.Drbg.int drbg mutations
      else 0))
