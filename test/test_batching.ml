(* Tests for batched atomic broadcast: the max_batch cap, deterministic
   union ordering, non-stalling with idle parties, and batch-wide catch-up
   after a rebuild. *)

open Sintra

let make_atomic ?(n = 4) (c : Cluster.t) pid =
  let logs = Array.init n (fun _ -> ref []) in
  let chans =
    Array.init n (fun i ->
      Atomic_channel.create (Cluster.runtime c i) ~pid
        ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i)))
        ())
  in
  (chans, logs)

let sequences logs = Array.map (fun l -> List.rev !l) logs

let suite = [
  Alcotest.test_case "max_batch cap bounds per-round progress" `Quick (fun () ->
    (* One sender queues 20 payloads before the first round can complete.
       With max_batch = 4 every proposed vector carries at most 4 of them,
       so draining the queue needs at least ceil(20/4) = 5 rounds. *)
    let c = Util.cluster ~seed:"bat1" ~max_batch:4 () in
    let chans, logs = make_atomic c "abc" in
    Cluster.inject c 1 (fun () ->
      for k = 0 to 19 do
        Atomic_channel.send chans.(1) (Printf.sprintf "m%d" k)
      done);
    ignore (Cluster.run c);
    let seqs = sequences logs in
    Util.check_all_equal "total order" (Array.to_list seqs);
    Alcotest.(check (list (pair int string))) "sender order preserved"
      (List.init 20 (fun k -> (1, Printf.sprintf "m%d" k)))
      seqs.(0);
    Alcotest.(check bool) "at least ceil(20/4) rounds" true
      (Atomic_channel.rounds_completed chans.(0) >= 5));

  Alcotest.test_case "batching amortizes rounds over the queue" `Quick (fun () ->
    (* The same 20-payload burst under the default cap completes in fewer
       rounds than under max_batch = 4: the whole point of batching. *)
    let run_with ~seed ~max_batch =
      let c = Util.cluster ~seed ~max_batch () in
      let chans, logs = make_atomic c "abc" in
      Cluster.inject c 1 (fun () ->
        for k = 0 to 19 do
          Atomic_channel.send chans.(1) (Printf.sprintf "m%d" k)
        done);
      ignore (Cluster.run c);
      Alcotest.(check int) "all delivered" 20
        (List.length (List.rev !(logs.(0))));
      Atomic_channel.rounds_completed chans.(0)
    in
    let capped = run_with ~seed:"bat2a" ~max_batch:4 in
    let batched = run_with ~seed:"bat2b" ~max_batch:256 in
    Alcotest.(check bool)
      (Printf.sprintf "fewer rounds batched (%d) than capped (%d)" batched
         capped)
      true (batched < capped));

  Alcotest.test_case "deterministic union order is identical everywhere" `Quick
    (fun () ->
      (* Four concurrent senders, eight payloads each, small cap: rounds
         decide multi-entry batches whose unions must flatten to the same
         sequence at every party. *)
      let c = Util.cluster ~seed:"bat3" ~max_batch:8 () in
      let chans, logs = make_atomic c "abc" in
      for i = 0 to 3 do
        Cluster.inject c i (fun () ->
          for k = 0 to 7 do
            Atomic_channel.send chans.(i) (Printf.sprintf "m%d.%d" i k)
          done)
      done;
      ignore (Cluster.run c);
      let seqs = sequences logs in
      Util.check_all_equal "total order" (Array.to_list seqs);
      Alcotest.(check int) "all 32 delivered" 32 (List.length seqs.(0));
      Alcotest.(check int) "no duplicates" 32
        (List.length (List.sort_uniq compare seqs.(0)));
      (* per-sender FIFO survives the union flattening *)
      for i = 0 to 3 do
        let mine = List.filter (fun (s, _) -> s = i) seqs.(0) in
        Alcotest.(check (list (pair int string))) (Printf.sprintf "fifo %d" i)
          (List.init 8 (fun k -> (i, Printf.sprintf "m%d.%d" i k)))
          mine
      done;
      Alcotest.(check bool) "rounds actually carried batches" true
        (Atomic_channel.rounds_completed chans.(0) < 32));

  Alcotest.test_case "empty-queue parties neither stall nor spin rounds" `Quick
    (fun () ->
      (* Only party 2 ever sends; the other three have empty queues in every
         round.  They must still vote rounds to completion (liveness), and
         once the queue drains nobody may keep proposing empty batches: the
         run must quiesce. *)
      let c = Util.cluster ~seed:"bat4" ~max_batch:16 () in
      let chans, logs = make_atomic c "abc" in
      Cluster.inject c 2 (fun () ->
        for k = 0 to 9 do
          Atomic_channel.send chans.(2) (Printf.sprintf "only%d" k)
        done);
      ignore (Cluster.run c ~until:300.0);
      Alcotest.(check int) "quiesced" 0 (Sim.Engine.pending c.Cluster.engine);
      let seqs = sequences logs in
      Util.check_all_equal "total order" (Array.to_list seqs);
      Alcotest.(check (list (pair int string))) "all ten delivered everywhere"
        (List.init 10 (fun k -> (2, Printf.sprintf "only%d" k)))
        seqs.(0));

  Alcotest.test_case "rebuilt party skips pre-crash seqs within a batch" `Quick
    (fun () ->
      (* Every party bursts four payloads, so pre-crash history sits inside
         multi-item batches.  Party 2 crashes after delivering it, rebuilds
         from empty state, and catches up: the replayed batches must yield
         the same sequence as everyone else — each pre-crash (orig, seq)
         delivered exactly once, none dropped, none duplicated. *)
      let c = Util.cluster ~seed:"bat5" ~max_batch:8 ~check_invariants:true () in
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans : Atomic_channel.t option array = Array.make 4 None in
      let make p =
        let rt = Cluster.runtime c p in
        chans.(p) <-
          Some
            (Atomic_channel.create rt ~pid:"bat"
               ~on_deliver:(fun ~sender m ->
                 logs.(p) := (sender, m) :: !(logs.(p)))
               ())
      in
      for p = 0 to 3 do make p done;
      let rt2 = Cluster.runtime c 2 in
      Runtime.on_rebuild rt2 (fun () ->
        logs.(2) := [];
        make 2);
      let burst p tag =
        Cluster.inject c p (fun () ->
          match chans.(p) with
          | Some ch ->
            for k = 0 to 3 do
              Atomic_channel.send ch (Printf.sprintf "p%d.%s%d" p tag k)
            done
          | None -> ())
      in
      for p = 0 to 3 do burst p "a" done;
      Cluster.at c ~time:0.5 (fun () -> Runtime.crash rt2);
      Cluster.at c ~time:3.0 (fun () -> Runtime.recover rt2);
      Cluster.at c ~time:4.0 (fun () ->
        burst 0 "b";
        burst 1 "b";
        burst 3 "b");
      Cluster.at c ~time:4.5 (fun () -> burst 2 "b");
      ignore (Cluster.run c ~until:300.0);
      Alcotest.(check int) "quiesced" 0 (Sim.Engine.pending c.Cluster.engine);
      let seqs = sequences logs in
      Alcotest.(check int) "all 32 payloads delivered" 32
        (List.length seqs.(0));
      Alcotest.(check int) "no duplicates at the rebuilt party"
        (List.length seqs.(2))
        (List.length (List.sort_uniq compare seqs.(2)));
      Util.check_all_equal "order after rebuild" (Array.to_list seqs));
]
