(* The test runner: every suite in one Alcotest binary (dune runtest). *)

let () =
  Alcotest.run "sintra"
    [
      ("bignum", Test_bignum.suite);
      ("hashes", Test_hashes.suite);
      ("wire", Test_wire.suite);
      ("crypto", Test_crypto.suite);
      ("sim", Test_sim.suite);
      ("swlink", Test_swlink.suite);
      ("broadcast", Test_broadcast.suite);
      ("agreement", Test_agreement.suite);
      ("channels", Test_channels.suite);
      ("batching", Test_batching.suite);
      ("pipeline", Test_pipeline.suite);
      ("load", Test_load.suite);
      ("optimistic", Test_optimistic.suite);
      ("system", Test_system.suite);
      ("properties", Test_properties.suite);
      ("robustness", Test_robustness.suite);
      ("service", Test_service.suite);
      ("regression", Test_regression.suite);
      ("faults", Test_faults.suite);
      ("trace", Test_trace.suite);
      ("causal", Test_causal.suite);
      ("lint", Test_lint.suite);
      ("vopr", Test_vopr.suite);
      ("store", Test_store.suite);
      ("amortized", Test_amortized.suite);
    ]
