(* Tests for the load generator: arrival-process statistics and the
   open/closed-loop client bookkeeping, all on virtual time. *)

let suite = [
  Alcotest.test_case "poisson gaps: nonnegative, mean ~ 1/rate" `Quick (fun () ->
    let rate = 50.0 in
    let a = Load.Arrival.poisson ~rate (Util.drbg ~seed:"poisson" ()) in
    let n = 5000 in
    let sum = ref 0.0 in
    for _ = 1 to n do
      let g = Load.Arrival.next_gap a in
      Alcotest.(check bool) "finite, >= 0" true (Float.is_finite g && g >= 0.0);
      sum := !sum +. g
    done;
    let mean = !sum /. float_of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "mean %.4f within 10%% of %.4f" mean (1.0 /. rate))
      true
      (Float.abs (mean -. (1.0 /. rate)) < 0.1 /. rate));

  Alcotest.test_case "bursty gaps: zero within bursts, same long-run rate"
    `Quick (fun () ->
      let rate = 40.0 and burst = 4 in
      let a =
        Load.Arrival.bursty ~rate ~burst (Util.drbg ~seed:"bursty" ())
      in
      let n = 4000 in
      let zeros = ref 0 and sum = ref 0.0 in
      for _ = 1 to n do
        let g = Load.Arrival.next_gap a in
        if g = 0.0 then incr zeros;
        sum := !sum +. g
      done;
      (* exactly burst-1 of every burst arrivals have zero gap *)
      Alcotest.(check int) "zero-gap fraction" (n * (burst - 1) / burst) !zeros;
      let mean = !sum /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "mean gap %.4f within 15%% of %.4f" mean (1.0 /. rate))
        true
        (Float.abs (mean -. (1.0 /. rate)) < 0.15 /. rate));

  Alcotest.test_case "fixed gaps: constant period" `Quick (fun () ->
    let a = Load.Arrival.fixed ~period:0.25 in
    for _ = 1 to 10 do
      Alcotest.(check (float 1e-12)) "period" 0.25 (Load.Arrival.next_gap a)
    done);

  Alcotest.test_case "arrival: invalid parameters rejected" `Quick (fun () ->
    Alcotest.check_raises "poisson rate 0"
      (Invalid_argument "Arrival.poisson: rate must be > 0") (fun () ->
        ignore (Load.Arrival.poisson ~rate:0.0 (Util.drbg ())));
    Alcotest.check_raises "bursty burst 0"
      (Invalid_argument "Arrival.bursty: burst must be >= 1") (fun () ->
        ignore (Load.Arrival.bursty ~rate:1.0 ~burst:0 (Util.drbg ())));
    Alcotest.check_raises "fixed negative"
      (Invalid_argument "Arrival.fixed: period must be >= 0") (fun () ->
        ignore (Load.Arrival.fixed ~period:(-1.0))));

  Alcotest.test_case "closed loop: one outstanding, latency recorded" `Quick
    (fun () ->
      let engine = Sim.Engine.create ~seed:"gen-closed" () in
      let g = Load.Gen.create ~engine () in
      let submitted = ref [] in
      (* A fake channel with a constant 0.05 s commit latency: echo every
         submitted marker back to the client's party after the delay. *)
      let submit ~cause:_ p =
        submitted := p :: !submitted;
        Sim.Engine.schedule engine ~delay:0.05 (fun () ->
          Load.Gen.deliver g ~party:0 p)
      in
      Load.Gen.add_closed g ~party:0 ~think:0.1 ~until:10.0 ~submit;
      Alcotest.(check int) "issues immediately" 1 (Load.Gen.issued g);
      ignore (Sim.Engine.run engine);
      (* cycle = 0.05 commit + 0.1 think = 0.15 s -> ~66 completions in 10 s *)
      Alcotest.(check bool) "many completions" true (Load.Gen.completed g >= 50);
      Alcotest.(check bool) "at most one outstanding" true
        (Load.Gen.issued g - Load.Gen.completed g <= 1);
      List.iter
        (fun l ->
          Alcotest.(check (float 1e-9)) "latency = commit delay" 0.05 l)
        (Load.Gen.latencies g));

  Alcotest.test_case "closed loop: foreign payloads and parties ignored" `Quick
    (fun () ->
      let engine = Sim.Engine.create ~seed:"gen-ignore" () in
      let g = Load.Gen.create ~engine () in
      let marker = ref "" in
      Load.Gen.add_closed g ~party:0 ~think:1.0 ~until:100.0
        ~submit:(fun ~cause:_ p -> marker := p);
      Alcotest.(check int) "one issued" 1 (Load.Gen.issued g);
      (* not a marker at all *)
      Load.Gen.deliver g ~party:0 "application payload";
      (* a marker-shaped payload for a client id that does not exist *)
      Load.Gen.deliver g ~party:0 "ld|99|0";
      (* our marker, but observed at a different party *)
      Load.Gen.deliver g ~party:1 !marker;
      Alcotest.(check int) "nothing completed" 0 (Load.Gen.completed g);
      (* the real completion *)
      Load.Gen.deliver g ~party:0 !marker;
      Alcotest.(check int) "completed" 1 (Load.Gen.completed g);
      (* a duplicate delivery of the same marker is not double-counted *)
      Load.Gen.deliver g ~party:0 !marker;
      Alcotest.(check int) "exactly once" 1 (Load.Gen.completed g));

  Alcotest.test_case "open loop: issues at arrival instants, ignores overload"
    `Quick (fun () ->
      let engine = Sim.Engine.create ~seed:"gen-open" () in
      let g = Load.Gen.create ~engine () in
      let count = ref 0 in
      (* Nothing is ever delivered back: an open-loop client keeps issuing
         on its arrival process anyway. *)
      Load.Gen.add_open g ~party:0 ~arrival:(Load.Arrival.fixed ~period:0.5)
        ~until:5.0 ~submit:(fun ~cause:_ _ -> incr count);
      ignore (Sim.Engine.run engine);
      Alcotest.(check int) "arrivals at 0.5 .. 5.0" 10 !count;
      Alcotest.(check int) "issued matches" 10 (Load.Gen.issued g);
      Alcotest.(check int) "none completed" 0 (Load.Gen.completed g));
]
