(* sintra-lint: every rule fires on a bad fixture, stays silent on the
   corresponding clean code, and is suppressed by an allow directive — plus
   the meta-test: the shipped tree itself is violation-free. *)

let find_rule (rule : string) (findings : Lint.finding list) :
    Lint.finding list =
  List.filter (fun f -> f.Lint.rule = rule) findings

let check (path : string) (text : string) : Lint.finding list =
  Lint.check_sources [ (path, text) ]

let expect_fires ~(rule : string) (path : string) (text : string) : unit =
  match find_rule rule (check path text) with
  | [] -> Alcotest.failf "%s: expected a %s finding on %S" path rule text
  | _ :: _ -> ()

let expect_silent ~(rule : string) (path : string) (text : string) : unit =
  match find_rule rule (check path text) with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: unexpected %s finding at line %d: %s" path rule
      f.Lint.line f.Lint.message

(* --- L1: hashtbl-order --- *)

let test_hashtbl_order () =
  let rule = "hashtbl-order" in
  expect_fires ~rule "lib/proto/votes.ml"
    "let vs = Hashtbl.fold (fun _ v acc -> v :: acc) tbl []\n";
  expect_fires ~rule "lib/proto/votes.ml"
    "let () = Hashtbl.iter (fun k v -> use k v) tbl\n";
  (* the sanctioned seam *)
  expect_silent ~rule "lib/proto/votes.ml"
    "let vs = Det.values tbl ~compare:Det.by_int\n";
  (* inside lib/det itself the rule is off *)
  expect_silent ~rule "lib/det/det.ml"
    "let bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []\n";
  (* mention in a comment or a string must not fire *)
  expect_silent ~rule "lib/proto/votes.ml"
    "(* Hashtbl.iter would be wrong here *)\nlet s = \"Hashtbl.fold\"\n";
  (* allow directive suppresses *)
  expect_silent ~rule "lib/proto/votes.ml"
    "(* lint: allow hashtbl-order — order-insensitive count *)\n\
     let n = Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0\n"

(* --- L2: poly-compare --- *)

let test_poly_compare () =
  let rule = "poly-compare" in
  expect_fires ~rule "lib/proto/check.ml" "let same = x == y\n";
  expect_fires ~rule "lib/proto/check.ml"
    "let ok = x = Nat.zero\n";
  expect_fires ~rule "lib/proto/check.ml"
    "let c = compare a (Bignum.Nat.of_int 3)\n";
  (* a typed comparison through the module is fine *)
  expect_silent ~rule "lib/proto/check.ml"
    "let c = Nat.compare a b\n";
  (* plain let-bindings of abstract values are not comparisons *)
  expect_silent ~rule "lib/proto/check.ml"
    "let x = Nat.of_int 7\n";
  (* a ~compare: label is an argument, not a call *)
  expect_silent ~rule "lib/proto/check.ml"
    "let vs = Det.values tbl ~compare:Bignum.Nat.compare\n";
  expect_silent ~rule "lib/proto/check.ml"
    "(* lint: allow poly-compare — physical identity intended *)\n\
     let same = h' == h\n"

(* --- L3: partial-fn --- *)

let test_partial_fn () =
  let rule = "partial-fn" in
  expect_fires ~rule "lib/proto/handler.ml" "let v = List.hd msgs\n";
  expect_fires ~rule "lib/proto/handler.ml" "let v = Option.get slot\n";
  expect_fires ~rule "lib/proto/handler.ml" "let v = Hashtbl.find tbl k\n";
  expect_fires ~rule "lib/proto/handler.ml"
    "let () = if bad then failwith \"boom\"\n";
  (* total variants are fine *)
  expect_silent ~rule "lib/proto/handler.ml"
    "let v = Hashtbl.find_opt tbl k\n\
     let w = match msgs with m :: _ -> Some m | [] -> None\n";
  expect_silent ~rule "lib/proto/handler.ml"
    "(* lint: allow partial-fn — guarded by the length check above *)\n\
     let v = List.hd msgs\n"

(* --- L4: debug-print --- *)

let test_debug_print () =
  let rule = "debug-print" in
  expect_fires ~rule "lib/proto/trace.ml" "let () = print_endline \"dbg\"\n";
  expect_fires ~rule "lib/proto/trace.ml"
    "let () = Printf.printf \"%d\\n\" x\n";
  (* Printf.sprintf builds a string; it does not print *)
  expect_silent ~rule "lib/proto/trace.ml"
    "let s = Printf.sprintf \"%d\" x\n";
  (* executables may print *)
  expect_silent ~rule "bin/tool.ml" "let () = print_endline \"usage\"\n";
  expect_silent ~rule "lib/proto/trace.ml"
    "(* lint: allow debug-print — the CLI reporting path *)\n\
     let () = print_endline msg\n"

(* lib/trace's console sink prints by design, via per-line allow directives;
   protocol code reaching for Printf directly still fails the same rule. *)
let test_trace_direct_print () =
  let rule = "debug-print" in
  (* the shape of Sink.console: each printing line carries its directive *)
  expect_silent ~rule "lib/trace/sink.ml"
    "let console () =\n\
     \  Fn (fun ev ->\n\
     \    (* lint: allow debug-print — the console sink's entire job is stdout *)\n\
     \    print_string (jsonl_line ev);\n\
     \    (* lint: allow debug-print — the console sink's entire job is stdout *)\n\
     \    print_newline ())\n";
  (* no blanket exemption for the trace library: an undirected print fires *)
  expect_fires ~rule "lib/trace/sink.ml"
    "let debug ev = print_endline (jsonl_line ev)\n";
  (* protocol code must go through a Trace.Ctx, never stdout *)
  expect_fires ~rule "lib/sintra/binary_agreement.ml"
    "let () = Printf.printf \"round %d done\\n\" r\n";
  expect_fires ~rule "lib/sintra/atomic_channel.ml"
    "let () = Printf.eprintf \"deliver %s\\n\" m\n"

(* --- L5: missing-mli --- *)

let test_missing_mli () =
  let rule = "missing-mli" in
  let bare = [ ("lib/proto/naked.ml", "let x = 1\n") ] in
  (match find_rule rule (Lint.check_sources bare) with
   | [] -> Alcotest.fail "expected missing-mli for a bare lib module"
   | f :: _ ->
     Alcotest.(check string) "flagged file" "lib/proto/naked.ml" f.Lint.file);
  (* with its interface present the rule is silent *)
  let paired =
    [ ("lib/proto/naked.ml", "let x = 1\n");
      ("lib/proto/naked.mli", "val x : int\n") ]
  in
  (match find_rule rule (Lint.check_sources paired) with
   | [] -> ()
   | _ -> Alcotest.fail "missing-mli fired despite the .mli being present");
  (* a file-level allow anywhere in the module suppresses it *)
  let allowed =
    [ ("lib/proto/naked.ml",
       "(* lint: allow missing-mli — generated module *)\nlet x = 1\n") ]
  in
  match find_rule rule (Lint.check_sources allowed) with
  | [] -> ()
  | _ -> Alcotest.fail "missing-mli fired despite a file-level allow"

(* --- directives --- *)

let test_allow_directive_scope () =
  (* one directive can name several rules *)
  expect_silent ~rule:"partial-fn" "lib/proto/multi.ml"
    "(* lint: allow partial-fn, hashtbl-order — both intentional *)\n\
     let v = List.hd (Hashtbl.fold (fun _ x a -> x :: a) tbl [])\n";
  expect_silent ~rule:"hashtbl-order" "lib/proto/multi.ml"
    "(* lint: allow partial-fn, hashtbl-order — both intentional *)\n\
     let v = List.hd (Hashtbl.fold (fun _ x a -> x :: a) tbl [])\n";
  (* the directive covers only the next code line, not the whole file *)
  expect_fires ~rule:"partial-fn" "lib/proto/multi.ml"
    "(* lint: allow partial-fn — first use only *)\n\
     let a = List.hd xs\n\
     let b = List.hd ys\n"

(* --- the meta-test: the shipped tree is clean --- *)

let test_tree_clean () =
  (* dune runs tests from _build/default/test; the (source_tree ...) deps in
     test/dune stage lib/ and bin/ one level up. *)
  let roots = [ "../lib"; "../bin" ] in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then
        Alcotest.failf "lint meta-test: missing staged tree %s" r)
    roots;
  let files = Lint.discover roots in
  if List.length files < 50 then
    Alcotest.failf "lint meta-test: discovered only %d files" (List.length files);
  match Lint.check_paths files with
  | [] -> ()
  | findings ->
    Alcotest.failf "tree has %d lint violations, e.g. %s"
      (List.length findings)
      (Lint.render (List.hd findings))
(* lint note: the List.hd above is in test code, outside the linted roots *)

let suite =
  [
    Alcotest.test_case "hashtbl-order fires/clears/allows" `Quick
      test_hashtbl_order;
    Alcotest.test_case "poly-compare fires/clears/allows" `Quick
      test_poly_compare;
    Alcotest.test_case "partial-fn fires/clears/allows" `Quick test_partial_fn;
    Alcotest.test_case "debug-print fires/clears/allows" `Quick
      test_debug_print;
    Alcotest.test_case "trace-direct-print: sink allowed, protocol not" `Quick
      test_trace_direct_print;
    Alcotest.test_case "missing-mli fires/clears/allows" `Quick
      test_missing_mli;
    Alcotest.test_case "allow directive scope" `Quick
      test_allow_directive_scope;
    Alcotest.test_case "whole tree is lint-clean" `Quick test_tree_clean;
  ]
