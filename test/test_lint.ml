(* sintra-lint: every rule fires on a bad fixture, stays silent on the
   corresponding clean code, and is suppressed by an allow directive — plus
   the meta-test: the shipped tree itself is violation-free. *)

let find_rule (rule : string) (findings : Lint.finding list) :
    Lint.finding list =
  List.filter (fun f -> f.Lint.rule = rule) findings

let check (path : string) (text : string) : Lint.finding list =
  Lint.check_sources [ (path, text) ]

let expect_fires ~(rule : string) (path : string) (text : string) : unit =
  match find_rule rule (check path text) with
  | [] -> Alcotest.failf "%s: expected a %s finding on %S" path rule text
  | _ :: _ -> ()

let expect_silent ~(rule : string) (path : string) (text : string) : unit =
  match find_rule rule (check path text) with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: unexpected %s finding at line %d: %s" path rule
      f.Lint.line f.Lint.message

(* --- L1: hashtbl-order --- *)

let test_hashtbl_order () =
  let rule = "hashtbl-order" in
  expect_fires ~rule "lib/proto/votes.ml"
    "let vs = Hashtbl.fold (fun _ v acc -> v :: acc) tbl []\n";
  expect_fires ~rule "lib/proto/votes.ml"
    "let () = Hashtbl.iter (fun k v -> use k v) tbl\n";
  (* the sanctioned seam *)
  expect_silent ~rule "lib/proto/votes.ml"
    "let vs = Det.values tbl ~compare:Det.by_int\n";
  (* inside lib/det itself the rule is off *)
  expect_silent ~rule "lib/det/det.ml"
    "let bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []\n";
  (* mention in a comment or a string must not fire *)
  expect_silent ~rule "lib/proto/votes.ml"
    "(* Hashtbl.iter would be wrong here *)\nlet s = \"Hashtbl.fold\"\n";
  (* allow directive suppresses *)
  expect_silent ~rule "lib/proto/votes.ml"
    "(* lint: allow hashtbl-order — order-insensitive count *)\n\
     let n = Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0\n"

(* --- L2: poly-compare --- *)

let test_poly_compare () =
  let rule = "poly-compare" in
  expect_fires ~rule "lib/proto/check.ml" "let same = x == y\n";
  expect_fires ~rule "lib/proto/check.ml"
    "let ok = x = Nat.zero\n";
  expect_fires ~rule "lib/proto/check.ml"
    "let c = compare a (Bignum.Nat.of_int 3)\n";
  (* a typed comparison through the module is fine *)
  expect_silent ~rule "lib/proto/check.ml"
    "let c = Nat.compare a b\n";
  (* plain let-bindings of abstract values are not comparisons *)
  expect_silent ~rule "lib/proto/check.ml"
    "let x = Nat.of_int 7\n";
  (* a ~compare: label is an argument, not a call *)
  expect_silent ~rule "lib/proto/check.ml"
    "let vs = Det.values tbl ~compare:Bignum.Nat.compare\n";
  expect_silent ~rule "lib/proto/check.ml"
    "(* lint: allow poly-compare — physical identity intended *)\n\
     let same = h' == h\n"

(* --- L3: partial-fn --- *)

let test_partial_fn () =
  let rule = "partial-fn" in
  expect_fires ~rule "lib/proto/handler.ml" "let v = List.hd msgs\n";
  expect_fires ~rule "lib/proto/handler.ml" "let v = Option.get slot\n";
  expect_fires ~rule "lib/proto/handler.ml" "let v = Hashtbl.find tbl k\n";
  expect_fires ~rule "lib/proto/handler.ml"
    "let () = if bad then failwith \"boom\"\n";
  (* total variants are fine *)
  expect_silent ~rule "lib/proto/handler.ml"
    "let v = Hashtbl.find_opt tbl k\n\
     let w = match msgs with m :: _ -> Some m | [] -> None\n";
  expect_silent ~rule "lib/proto/handler.ml"
    "(* lint: allow partial-fn — guarded by the length check above *)\n\
     let v = List.hd msgs\n"

(* --- L4: debug-print --- *)

let test_debug_print () =
  let rule = "debug-print" in
  expect_fires ~rule "lib/proto/trace.ml" "let () = print_endline \"dbg\"\n";
  expect_fires ~rule "lib/proto/trace.ml"
    "let () = Printf.printf \"%d\\n\" x\n";
  (* Printf.sprintf builds a string; it does not print *)
  expect_silent ~rule "lib/proto/trace.ml"
    "let s = Printf.sprintf \"%d\" x\n";
  (* executables may print *)
  expect_silent ~rule "bin/tool.ml" "let () = print_endline \"usage\"\n";
  expect_silent ~rule "lib/proto/trace.ml"
    "(* lint: allow debug-print — the CLI reporting path *)\n\
     let () = print_endline msg\n"

(* lib/trace's console sink prints by design, via per-line allow directives;
   protocol code reaching for Printf directly still fails the same rule. *)
let test_trace_direct_print () =
  let rule = "debug-print" in
  (* the shape of Sink.console: each printing line carries its directive *)
  expect_silent ~rule "lib/trace/sink.ml"
    "let console () =\n\
     \  Fn (fun ev ->\n\
     \    (* lint: allow debug-print — the console sink's entire job is stdout *)\n\
     \    print_string (jsonl_line ev);\n\
     \    (* lint: allow debug-print — the console sink's entire job is stdout *)\n\
     \    print_newline ())\n";
  (* no blanket exemption for the trace library: an undirected print fires *)
  expect_fires ~rule "lib/trace/sink.ml"
    "let debug ev = print_endline (jsonl_line ev)\n";
  (* protocol code must go through a Trace.Ctx, never stdout *)
  expect_fires ~rule "lib/sintra/binary_agreement.ml"
    "let () = Printf.printf \"round %d done\\n\" r\n";
  expect_fires ~rule "lib/sintra/atomic_channel.ml"
    "let () = Printf.eprintf \"deliver %s\\n\" m\n"

(* --- L5: missing-mli --- *)

let test_missing_mli () =
  let rule = "missing-mli" in
  let bare = [ ("lib/proto/naked.ml", "let x = 1\n") ] in
  (match find_rule rule (Lint.check_sources bare) with
   | [] -> Alcotest.fail "expected missing-mli for a bare lib module"
   | f :: _ ->
     Alcotest.(check string) "flagged file" "lib/proto/naked.ml" f.Lint.file);
  (* with its interface present the rule is silent *)
  let paired =
    [ ("lib/proto/naked.ml", "let x = 1\n");
      ("lib/proto/naked.mli", "val x : int\n") ]
  in
  (match find_rule rule (Lint.check_sources paired) with
   | [] -> ()
   | _ -> Alcotest.fail "missing-mli fired despite the .mli being present");
  (* a file-level allow anywhere in the module suppresses it *)
  let allowed =
    [ ("lib/proto/naked.ml",
       "(* lint: allow missing-mli — generated module *)\nlet x = 1\n") ]
  in
  match find_rule rule (Lint.check_sources allowed) with
  | [] -> ()
  | _ -> Alcotest.fail "missing-mli fired despite a file-level allow"

(* --- directives --- *)

let test_allow_directive_scope () =
  (* one directive can name several rules *)
  expect_silent ~rule:"partial-fn" "lib/proto/multi.ml"
    "(* lint: allow partial-fn, hashtbl-order — both intentional *)\n\
     let v = List.hd (Hashtbl.fold (fun _ x a -> x :: a) tbl [])\n";
  expect_silent ~rule:"hashtbl-order" "lib/proto/multi.ml"
    "(* lint: allow partial-fn, hashtbl-order — both intentional *)\n\
     let v = List.hd (Hashtbl.fold (fun _ x a -> x :: a) tbl [])\n";
  (* the directive covers only the next code line, not the whole file *)
  expect_fires ~rule:"partial-fn" "lib/proto/multi.ml"
    "(* lint: allow partial-fn — first use only *)\n\
     let a = List.hd xs\n\
     let b = List.hd ys\n"

(* --- S1: determinism --- *)

let test_determinism () =
  let rule = "determinism" in
  expect_fires ~rule "lib/sintra/proto.ml" "let now () = Unix.gettimeofday ()\n";
  expect_fires ~rule "lib/sim/engine2.ml" "let jitter () = Random.float 0.1\n";
  (* satellite: the rule extends to test/ and bench/ trees *)
  expect_fires ~rule "test/test_foo.ml" "let t0 = Sys.time ()\n";
  expect_fires ~rule "bench/b.ml" "let h = Hashtbl.hash key\n";
  (* outside the deterministic trees the rule is off *)
  expect_silent ~rule "lib/load/gen.ml" "let now () = Unix.gettimeofday ()\n";
  expect_silent ~rule "bin/tool.ml" "let t0 = Sys.time ()\n";
  (* comments and strings never fire *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "(* Unix.gettimeofday would be wrong *)\nlet s = \"Random.int\"\n";
  expect_silent ~rule "lib/sintra/proto.ml"
    "(* lint: allow determinism — host-time diagnostics only *)\n\
     let now () = Unix.gettimeofday ()\n"

(* --- S2: charge-coverage --- *)

let test_charge_coverage () =
  let rule = "charge-coverage" in
  expect_fires ~rule "lib/sintra/proto.ml"
    "let check t sh =\n  Tsig.verify_share t.pub ~ctx:t.pid sh\n";
  (* the paired Charge call in the same top-level function clears it *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let check t sh =\n\
     \  Charge.tsig_verify_share t.charge;\n\
     \  Tsig.verify_share t.pub ~ctx:t.pid sh\n";
  (* a mismatched Charge entry does not: pairing is per-operation *)
  expect_fires ~rule "lib/sintra/proto.ml"
    "let check t sh =\n\
     \  Charge.tsig_verify t.charge ~k:2;\n\
     \  Tsig.verify_share t.pub ~ctx:t.pid sh\n";
  (* a priced name in type position is not a call (dec_share the type) *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let parse (body : string) : (int * Crypto.Threshold_enc.dec_share) option =\n\
     \  decode body\n";
  (* the charging seam itself is exempt *)
  expect_silent ~rule "lib/sintra/tsig.ml"
    "let verify t s = Crypto.Threshold_sig.verify t.pub s\n";
  (* crypto layer is out of scope: the rule guards protocol modules *)
  expect_silent ~rule "lib/crypto/rsa_test_helper.ml"
    "let v pk s m = Crypto.Rsa.verify pk ~ctx:\"x\" ~signature:s m\n";
  expect_silent ~rule "lib/sintra/proto.ml"
    "let check t sh =\n\
     \  (* lint: allow charge-coverage — adversary-side call *)\n\
     \  Tsig.verify_share t.pub ~ctx:t.pid sh\n"

(* Regression (fixed in this PR): optimistic_channel's report_stmt hashed
   the closing vector without charging the meter.  The exact pre-fix shape
   must keep firing; the fixed shape must stay silent. *)
let test_report_stmt_regression () =
  let rule = "charge-coverage" in
  expect_fires ~rule "lib/sintra/optimistic_channel.ml"
    "let report_stmt (t : t) ~(epoch : int) (closings : string list) : string =\n\
     \  let h =\n\
     \    Hashes.Sha256.digest_list\n\
     \      (List.concat_map (fun c -> [ string_of_int (String.length c); \"|\"; c ]) closings)\n\
     \  in\n\
     \  Printf.sprintf \"opt-report|%s|%d|%s\" t.pid epoch h\n";
  expect_silent ~rule "lib/sintra/optimistic_channel.ml"
    "let report_stmt (t : t) ~(epoch : int) (closings : string list) : string =\n\
     \  let parts =\n\
     \    List.concat_map (fun c -> [ string_of_int (String.length c); \"|\"; c ]) closings\n\
     \  in\n\
     \  Charge.hash t.rt.Runtime.charge\n\
     \    ~bytes:(List.fold_left (fun acc s -> acc + String.length s) 0 parts);\n\
     \  let h = Hashes.Sha256.digest_list parts in\n\
     \  Printf.sprintf \"opt-report|%s|%d|%s\" t.pid epoch h\n"

(* --- S3: handler-flow --- *)

let decl = "type msg = Ping of int | Pong of int\n"

let test_handler_flow () =
  let rule = "handler-flow" in
  (* constructed and matched: clean *)
  expect_silent ~rule "lib/sintra/proto.ml"
    (decl
     ^ "let send t = emit t (Ping 1); emit t (Pong 2)\n"
     ^ "let handle t m = match m with Ping k -> reply t (Pong k) | Pong _ -> ()\n");
  (* sent but unhandled *)
  expect_fires ~rule "lib/sintra/proto.ml"
    (decl
     ^ "let send t = emit t (Ping 1); emit t (Pong 2)\n"
     ^ "let handle t m = match m with Ping k -> ignore k | _ -> ()\n");
  (* matched but never constructed *)
  expect_fires ~rule "lib/sintra/proto.ml"
    (decl
     ^ "let send t = emit t (Ping 1)\n"
     ^ "let handle t m = match m with Ping k -> ignore k | Pong _ -> ()\n");
  (* declared and never used at all *)
  expect_fires ~rule "lib/sintra/proto.ml" decl;
  (* exported through the .mli: public API, out of the rule's reach *)
  (match
     find_rule rule
       (Lint.check_sources
          [ ("lib/sintra/proto.ml", decl);
            ("lib/sintra/proto.mli", decl) ])
   with
   | [] -> ()
   | f :: _ -> Alcotest.failf "public constructor flagged: %s" f.Lint.message);
  (* exceptions are not message constructors *)
  expect_silent ~rule "lib/sintra/proto.ml" "exception Violation of string\n";
  (* out of protocol scope *)
  expect_silent ~rule "lib/vopr/mutate.ml" decl;
  expect_silent ~rule "lib/sintra/proto.ml"
    ("(* lint: allow handler-flow — wire-compat placeholder *)\n" ^ decl)

(* --- S4: quorum-literal --- *)

let test_quorum_literal () =
  let rule = "quorum-literal" in
  expect_fires ~rule "lib/sintra/proto.ml"
    "let q t = t.rt.Runtime.cfg.Config.t + 1\n";
  expect_fires ~rule "lib/sintra/proto.ml"
    "let q cfg = (2 * cfg.Config.t) + 1\n";
  expect_fires ~rule "lib/sintra/proto.ml"
    "let q cfg = cfg.Config.n - cfg.Config.t\n";
  expect_fires ~rule "lib/sintra/proto.ml"
    "let third cfg = cfg.Config.n / 3\n";
  (* party iteration is not quorum arithmetic *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let all cfg = for i = 0 to cfg.Config.n - 1 do ping i done\n";
  (* the sanctioned helpers *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let q cfg = Config.ready_quorum cfg\n";
  (* the helpers' own definitions live in config.ml/invariant.ml *)
  expect_silent ~rule "lib/sintra/config.ml"
    "let ready_quorum (c : t) : int = (2 * c.t) + 1\n";
  expect_silent ~rule "lib/load/gen.ml" "let q cfg = cfg.Config.t + 1\n";
  expect_silent ~rule "lib/sintra/proto.ml"
    "(* lint: allow quorum-literal — documented special case *)\n\
     let q cfg = cfg.Config.t + 1\n"

(* --- S5: cache-key-digest --- *)

let test_cache_key_digest () =
  let rule = "cache-key-digest" in
  (* explicit digest expression: clean *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let remember t msg =\n\
     \  Crypto.Share_cache.add t.cache ~group:t.pid ~scheme:\"s\"\n\
     \    ~digest:(Hashes.Sha256.digest msg) ~sender:1 ~index:1\n";
  (* a helper named *_digest carries the obligation by convention *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let remember t msg =\n\
     \  Crypto.Share_cache.add t.cache ~group:t.pid ~scheme:\"s\"\n\
     \    ~digest:(stmt_digest t msg) ~sender:1 ~index:1\n";
  (* raw statement bytes as the key: fires *)
  expect_fires ~rule "lib/sintra/proto.ml"
    "let remember t msg =\n\
     \  Crypto.Share_cache.add t.cache ~group:t.pid ~scheme:\"s\"\n\
     \    ~digest:msg ~sender:1 ~index:1\n";
  (* punned ~digest let-bound from a digest: clean *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let remember t msg =\n\
     \  let digest = Hashes.Sha256.digest_list [ t.pid; msg ] in\n\
     \  Crypto.Share_cache.add t.cache ~group:t.pid ~scheme:\"s\" ~digest\n\
     \    ~sender:1 ~index:1\n";
  (* punned ~digest let-bound from raw bytes: fires *)
  expect_fires ~rule "lib/sintra/proto.ml"
    "let remember t msg =\n\
     \  let digest = msg in\n\
     \  Crypto.Share_cache.add t.cache ~group:t.pid ~scheme:\"s\" ~digest\n\
     \    ~sender:1 ~index:1\n";
  (* a forwarding wrapper receives ~digest as a parameter: trusted (the
     rule inspects its callers' key computations instead) *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let record (t : t) ~(digest : string) ~(sender : int) : unit =\n\
     \  Crypto.Share_cache.add t.cache ~group:t.pid ~scheme:\"s\" ~digest\n\
     \    ~sender ~index:sender\n";
  (* probes are not insertions *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let seen t msg =\n\
     \  Crypto.Share_cache.mem t.cache ~scheme:\"s\" ~digest:msg ~sender:1\n\
     \    ~index:1\n";
  (* the definition site is out of scope *)
  expect_silent ~rule "lib/crypto/share_cache.ml"
    "let add (t : t) ~group ~scheme ~digest ~sender ~index = insert t ...\n";
  (* inline allow *)
  expect_silent ~rule "lib/sintra/proto.ml"
    "let remember t msg =\n\
     \  (* lint: allow cache-key-digest — key is a fixed tag, documented *)\n\
     \  Crypto.Share_cache.add t.cache ~group:t.pid ~scheme:\"s\" ~digest:msg\n\
     \    ~sender:1 ~index:1\n"

(* --- S6: durable-io --- *)

let test_durable_io () =
  let rule = "durable-io" in
  (* raw openers fire anywhere under lib/store and lib/sintra *)
  expect_fires ~rule "lib/store/log.ml"
    "let load path =\n  let ic = open_in_bin path in\n  really_input_string ic 4\n";
  expect_fires ~rule "lib/store/snapshot.ml"
    "let save path s =\n  let oc = Stdlib.open_out path in\n  output_string oc s\n";
  expect_fires ~rule "lib/sintra/durable.ml"
    "let dump t = Out_channel.with_open_bin t.path (fun oc -> ())\n";
  expect_fires ~rule "lib/store/gc.ml"
    "let drop path = Sys.remove path\n";
  (* going through the Device seam is the sanctioned path *)
  expect_silent ~rule "lib/store/log.ml"
    "let append t rec_ = Device.append t.dev (frame rec_)\n";
  expect_silent ~rule "lib/sintra/durable.ml"
    "let persist t b = Store.Device.append t.dev b\n";
  (* out of scope: the CLI and the linter itself read files directly *)
  expect_silent ~rule "bin/sintra_sim.ml"
    "let read path = let ic = open_in_bin path in really_input_string ic 4\n";
  expect_silent ~rule "lib/lint/source.ml"
    "let load path = let ic = open_in_bin path in really_input_string ic 4\n";
  (* mention in a comment or a string must not fire *)
  expect_silent ~rule "lib/store/log.ml"
    "(* open_out would bypass the Device *)\nlet s = \"open_in_bin\"\n";
  (* inline allow suppresses (the seam file carries a policy allow too) *)
  expect_silent ~rule "lib/store/device.ml"
    "(* lint: allow durable-io — the seam itself *)\n\
     let real path = open_out_gen [ Open_append ] 0o644 path\n"

(* --- the tokenizer --- *)

let count_kind (k : Lint.Lex.kind) (toks : Lint.Lex.token list) : int =
  List.length (List.filter (fun t -> t.Lint.Lex.kind = k) toks)

let expect_roundtrip (text : string) : Lint.Lex.token list =
  let toks = Lint.Lex.tokenize text in
  Alcotest.(check string) "round-trip" text (Lint.Lex.concat toks);
  toks

let test_lex_comments () =
  let toks =
    expect_roundtrip "let a = 1 (* outer (* inner *) still outer *) let b = 2\n"
  in
  Alcotest.(check int) "one nested comment" 1 (count_kind Lint.Lex.Comment toks);
  (* a string inside a comment hides a would-be terminator *)
  let toks = expect_roundtrip "x (* tricky \" *) \" end *) y\n" in
  Alcotest.(check int) "string-guarded comment" 1
    (count_kind Lint.Lex.Comment toks);
  (match List.filter (fun t -> t.Lint.Lex.kind = Lint.Lex.Word) toks with
   | [ x; y ] ->
     Alcotest.(check string) "before" "x" x.Lint.Lex.text;
     Alcotest.(check string) "after" "y" y.Lint.Lex.text
   | ws -> Alcotest.failf "expected 2 words around comment, got %d" (List.length ws))

let test_lex_literals () =
  let toks = expect_roundtrip "let s = \"a\\\"b\\\\\" ^ g '\\n' '\\'' 'z'\n" in
  Alcotest.(check int) "one string" 1 (count_kind Lint.Lex.Str toks);
  Alcotest.(check int) "three chars" 3 (count_kind Lint.Lex.Chr toks);
  (* a type variable's quote is not a char literal *)
  let toks = expect_roundtrip "let f (x : 'a) (y : 'b) = (x, y)\n" in
  Alcotest.(check int) "no char literals" 0 (count_kind Lint.Lex.Chr toks);
  (* primes inside identifiers stay in the identifier *)
  let toks = expect_roundtrip "let x' = f x'' in x'\n" in
  Alcotest.(check int) "no chars in primed idents" 0 (count_kind Lint.Lex.Chr toks)

let test_lex_quoted_strings () =
  let toks = expect_roundtrip "let s = {|raw \" (* |} tail\n" in
  Alcotest.(check int) "one quoted" 1 (count_kind Lint.Lex.Quoted toks);
  let toks = expect_roundtrip "let s = {id|has |} and \" inside|id} ^ t\n" in
  Alcotest.(check int) "one id-quoted" 1 (count_kind Lint.Lex.Quoted toks);
  (match List.find_opt (fun t -> t.Lint.Lex.kind = Lint.Lex.Quoted) toks with
   | Some q ->
     Alcotest.(check string) "delimited body"
       "{id|has |} and \" inside|id}" q.Lint.Lex.text
   | None -> Alcotest.fail "missing quoted token")

let test_lex_qualified_idents () =
  let toks =
    Lint.Lex.significant
      (expect_roundtrip "let v = t.rt.Runtime.cfg.Config.t + 1\n")
  in
  let words = List.filter (fun t -> t.Lint.Lex.kind = Lint.Lex.Word) toks in
  Alcotest.(check bool) "joined path" true
    (List.exists
       (fun t -> t.Lint.Lex.text = "t.rt.Runtime.cfg.Config.t")
       words)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

(* The tokenizer meta-test: every .ml/.mli under lib/ round-trips. *)
let test_lex_roundtrip_tree () =
  let files = Lint.discover [ "../lib" ] in
  if List.length files < 50 then
    Alcotest.failf "round-trip meta-test: only %d files" (List.length files);
  List.iter
    (fun path ->
      let text = read_file path in
      if Lint.Lex.concat (Lint.Lex.tokenize text) <> text then
        Alcotest.failf "tokenizer does not round-trip %s" path)
    files

(* --- machine-readable output --- *)

let test_json_output () =
  let findings =
    Lint.check_sources
      [ ("lib/sintra/proto.ml",
         "let now () = Unix.gettimeofday ()\n\
          let q cfg = cfg.Config.t + 1\n");
        ("lib/sintra/proto.mli", "val now : unit -> float\n") ]
  in
  Alcotest.(check int) "two findings" 2 (List.length findings);
  let js = Lint.render_json ~files:3 ~suppressed:1 findings in
  match Trace.Json.parse js with
  | Error e -> Alcotest.failf "--format json output does not parse: %s" e
  | Ok v ->
    let str name =
      match Option.bind (Trace.Json.member name v) Trace.Json.str_opt with
      | Some s -> s
      | None -> Alcotest.failf "missing string field %s" name
    in
    let num name =
      match Option.bind (Trace.Json.member name v) Trace.Json.num_opt with
      | Some n -> int_of_float n
      | None -> Alcotest.failf "missing numeric field %s" name
    in
    Alcotest.(check string) "tool" "sintra-lint" (str "tool");
    Alcotest.(check int) "files" 3 (num "files");
    Alcotest.(check int) "suppressed" 1 (num "suppressed");
    Alcotest.(check int) "new" 2 (num "new");
    (match Option.bind (Trace.Json.member "findings" v) Trace.Json.list_opt with
     | Some items ->
       Alcotest.(check int) "findings array" 2 (List.length items);
       List.iter
         (fun item ->
           List.iter
             (fun field ->
               if Trace.Json.member field item = None then
                 Alcotest.failf "finding lacks %s" field)
             [ "file"; "line"; "rule"; "message" ])
         items
     | None -> Alcotest.fail "findings is not a list");
    (match Option.bind (Trace.Json.member "by_rule" v)
             (Trace.Json.member "determinism")
     with
     | Some n ->
       Alcotest.(check (option (float 0.0))) "per-rule count" (Some 1.0)
         (Trace.Json.num_opt n)
     | None -> Alcotest.fail "by_rule lacks determinism")

(* --- the .sintra-lint policy file --- *)

let test_baseline_parse_errors () =
  let expect_error text =
    match Lint.Baseline.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "policy text should not parse: %S" text
  in
  expect_error "allow no-such-rule lib\n";
  expect_error "baseline determinism lib nope\n";
  expect_error "frobnicate determinism lib\n";
  match Lint.Baseline.parse "# only a comment\n\nallow determinism bench\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid policy rejected: %s" e

let test_baseline_apply () =
  let policy_text =
    "allow determinism bench   # host-time by design\n\
     baseline charge-coverage lib/sintra 2\n"
  in
  let policy =
    match Lint.Baseline.parse policy_text with
    | Ok p -> p
    | Error e -> Alcotest.failf "policy parse: %s" e
  in
  let f file rule = { Lint.file; line = 1; rule; message = "m" } in
  (* allow suppresses without limit; baseline absorbs exactly its count *)
  let findings =
    [ f "bench/micro.ml" "determinism";
      f "bench/vopr_bench.ml" "determinism";
      f "lib/sintra/a.ml" "charge-coverage";
      f "lib/sintra/b.ml" "charge-coverage";
      f "lib/sintra/c.ml" "charge-coverage";
      f "lib/sintra/a.ml" "determinism" ]
  in
  let kept, suppressed = Lint.Baseline.apply policy findings in
  Alcotest.(check int) "suppressed" 4 suppressed;
  (match kept with
   | [ third_charge; other_rule ] ->
     Alcotest.(check string) "beyond the baseline count" "lib/sintra/c.ml"
       third_charge.Lint.file;
     Alcotest.(check string) "rule mismatch passes through" "determinism"
       other_rule.Lint.rule
   | ks -> Alcotest.failf "expected 2 kept findings, got %d" (List.length ks));
  (* staged-tree paths (../lib/...) match repo-root prefixes *)
  let kept, suppressed =
    Lint.Baseline.apply policy [ f "../bench/micro.ml" "determinism" ]
  in
  Alcotest.(check int) "normalized path suppressed" 1 suppressed;
  Alcotest.(check int) "nothing kept" 0 (List.length kept)

(* --- the meta-test: the shipped tree is clean --- *)

let test_tree_clean () =
  (* dune runs tests from _build/default/test; the (source_tree ...) deps in
     test/dune stage lib/, bin/, bench/ and the policy file one level up
     (and ../test is this directory itself). *)
  let roots = [ "../lib"; "../bin"; "../test"; "../bench" ] in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then
        Alcotest.failf "lint meta-test: missing staged tree %s" r)
    roots;
  let files = Lint.discover roots in
  if List.length files < 100 then
    Alcotest.failf "lint meta-test: discovered only %d files" (List.length files);
  let policy =
    match Lint.Baseline.load "../.sintra-lint" with
    | Ok p -> p
    | Error e -> Alcotest.failf "lint meta-test: policy: %s" e
  in
  match Lint.Baseline.apply policy (Lint.check_paths files) with
  | [], _ -> ()
  | findings, _ ->
    Alcotest.failf "tree has %d new lint violations, e.g. %s"
      (List.length findings)
      (Lint.render (List.hd findings))
(* lint note: the List.hd above is in test code; only S1 scans test/ *)

let suite =
  [
    Alcotest.test_case "hashtbl-order fires/clears/allows" `Quick
      test_hashtbl_order;
    Alcotest.test_case "poly-compare fires/clears/allows" `Quick
      test_poly_compare;
    Alcotest.test_case "partial-fn fires/clears/allows" `Quick test_partial_fn;
    Alcotest.test_case "debug-print fires/clears/allows" `Quick
      test_debug_print;
    Alcotest.test_case "trace-direct-print: sink allowed, protocol not" `Quick
      test_trace_direct_print;
    Alcotest.test_case "missing-mli fires/clears/allows" `Quick
      test_missing_mli;
    Alcotest.test_case "allow directive scope" `Quick
      test_allow_directive_scope;
    Alcotest.test_case "determinism (S1) fires/clears/allows" `Quick
      test_determinism;
    Alcotest.test_case "charge-coverage (S2) fires/clears/allows" `Quick
      test_charge_coverage;
    Alcotest.test_case "regression: uncharged report_stmt hash shape" `Quick
      test_report_stmt_regression;
    Alcotest.test_case "handler-flow (S3) fires/clears/allows" `Quick
      test_handler_flow;
    Alcotest.test_case "quorum-literal (S4) fires/clears/allows" `Quick
      test_quorum_literal;
    Alcotest.test_case "cache-key-digest (S5) fires/clears/allows" `Quick
      test_cache_key_digest;
    Alcotest.test_case "durable-io (S6) fires/clears/allows" `Quick
      test_durable_io;
    Alcotest.test_case "lexer: nested and string-guarded comments" `Quick
      test_lex_comments;
    Alcotest.test_case "lexer: string/char escapes vs type variables" `Quick
      test_lex_literals;
    Alcotest.test_case "lexer: {id|...|id} quoted strings" `Quick
      test_lex_quoted_strings;
    Alcotest.test_case "lexer: qualified identifier joining" `Quick
      test_lex_qualified_idents;
    Alcotest.test_case "lexer round-trips every file under lib/" `Quick
      test_lex_roundtrip_tree;
    Alcotest.test_case "--format json output parses and carries schema" `Quick
      test_json_output;
    Alcotest.test_case ".sintra-lint rejects malformed policy" `Quick
      test_baseline_parse_errors;
    Alcotest.test_case ".sintra-lint allow/baseline precedence" `Quick
      test_baseline_apply;
    Alcotest.test_case "whole tree is lint-clean" `Quick test_tree_clean;
  ]
