(* Schedule-randomized protocol properties: every seed produces a different
   interleaving of the asynchronous network (different jitter draws,
   different coin values), and the safety properties must hold in all of
   them.  This is the distributed-systems analogue of the qcheck property
   tests on the data structures. *)

open Sintra

let seeds = List.init 12 (fun i -> Printf.sprintf "prop-%d" i)

let suite = [
  Alcotest.test_case "ABA: agreement+validity+termination across schedules" `Slow
    (fun () ->
      List.iteri
        (fun k seed ->
          let rng = Hashes.Drbg.create ~seed:("props" ^ seed) in
          let props = List.init 4 (fun _ -> Hashes.Drbg.bool rng) in
          let c = Util.cluster ~seed () in
          let decided = Array.make 4 None in
          let insts =
            Array.init 4 (fun i ->
              Binary_agreement.create (Cluster.runtime c i) ~pid:"p-aba"
                ~on_decide:(fun b _ -> decided.(i) <- Some b))
          in
          List.iteri
            (fun i v ->
              Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) v))
            props;
          ignore (Cluster.run c);
          Array.iteri
            (fun i d ->
              if d = None then Alcotest.failf "seed %d: party %d undecided" k i)
            decided;
          Util.check_all_equal "agreement" (Array.to_list decided);
          (match decided.(0) with
           | Some v ->
             if not (List.mem v props) then
               Alcotest.failf "seed %d: decided unproposed value" k
           | None -> ()))
        seeds);

  Alcotest.test_case "MVBA: agreement+external-validity across schedules" `Slow
    (fun () ->
      List.iteri
        (fun k seed ->
          let c = Util.cluster ~seed:("mv" ^ seed) ~perm_mode:Config.Random_local () in
          let decided = Array.make 4 None in
          let validator s = String.length s >= 2 in
          let insts =
            Array.init 4 (fun i ->
              Array_agreement.create (Cluster.runtime c i) ~pid:"p-mv" ~validator
                ~on_decide:(fun v -> decided.(i) <- Some v))
          in
          let props = List.init 4 (fun i -> Printf.sprintf "v%d-%d" i k) in
          List.iteri
            (fun i v ->
              Cluster.inject c i (fun () -> Array_agreement.propose insts.(i) v))
            props;
          ignore (Cluster.run c);
          Array.iteri
            (fun i d -> if d = None then Alcotest.failf "seed %d: party %d undecided" k i)
            decided;
          Util.check_all_equal "agreement" (Array.to_list decided);
          (match decided.(0) with
           | Some v ->
             if not (List.mem v props) then Alcotest.failf "seed %d: foreign value" k
           | None -> ()))
        seeds);

  Alcotest.test_case "atomic channel: total order + exactly-once across schedules" `Slow
    (fun () ->
      List.iteri
        (fun k seed ->
          let rng = Hashes.Drbg.create ~seed:("abc" ^ seed) in
          let c = Util.cluster ~seed:("abc" ^ seed) () in
          let logs = Array.init 4 (fun _ -> ref []) in
          let chans =
            Array.init 4 (fun i ->
              Atomic_channel.create (Cluster.runtime c i) ~pid:"p-abc"
                ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i)))
                ())
          in
          (* a random workload: 1-3 senders, 1-4 messages each, staggered *)
          let nsenders = 1 + Hashes.Drbg.int rng 3 in
          let sent = ref [] in
          for s = 0 to nsenders - 1 do
            let count = 1 + Hashes.Drbg.int rng 4 in
            for m = 0 to count - 1 do
              let payload = Printf.sprintf "w%d.%d" s m in
              sent := (s, payload) :: !sent;
              let at = Hashes.Drbg.float rng 0.5 in
              Cluster.at c ~time:at (fun () ->
                Cluster.inject c s (fun () -> Atomic_channel.send chans.(s) payload))
            done
          done;
          ignore (Cluster.run c);
          let seqs = Array.map (fun l -> List.rev !l) logs in
          Util.check_all_equal "total order" (Array.to_list seqs);
          (* exactly-once and complete *)
          let delivered = List.sort compare seqs.(0) in
          let expected = List.sort compare !sent in
          if delivered <> expected then
            Alcotest.failf "seed %d: delivered set differs from sent set" k)
        seeds);

  Alcotest.test_case "coin: any t+1 subset agrees, across many coins" `Quick (fun () ->
    let c = Util.cluster ~seed:"coin-prop" () in
    let keys = c.Cluster.dealer in
    let pub = keys.Dealer.coin_pub in
    let drbg = Util.drbg ~seed:"coin-prop-rng" () in
    for coin = 0 to 14 do
      let name = Printf.sprintf "prop-coin-%d" coin in
      let shares =
        List.init 4 (fun i ->
          Crypto.Threshold_coin.release
            ~drbg:(Hashes.Drbg.fork drbg (Printf.sprintf "%d.%d" coin i))
            pub keys.Dealer.parties.(i).Dealer.coin_share ~name)
      in
      let pick a b = [ List.nth shares a; List.nth shares b ] in
      let v0 = Crypto.Threshold_coin.assemble_bit pub ~name (pick 0 1) in
      List.iter
        (fun (a, b) ->
          if Crypto.Threshold_coin.assemble_bit pub ~name (pick a b) <> v0 then
            Alcotest.failf "coin %d: subsets disagree" coin)
        [ (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
    done);

  Alcotest.test_case "shamir: random share subsets always reconstruct" `Quick (fun () ->
    let drbg = Util.drbg ~seed:"shamir-prop" () in
    let q = Bignum.Nat.of_string "57896044618658097711785492504343953926634992332820282019728792003956564819949" in
    for trial = 0 to 19 do
      let n = 4 + Hashes.Drbg.int drbg 6 in           (* 4..9 *)
      let k = 2 + Hashes.Drbg.int drbg (n - 2) in     (* 2..n *)
      let secret =
        Bignum.Nat.random_below ~random_bytes:(Hashes.Drbg.random_bytes drbg) q
      in
      let shares =
        Crypto.Shamir.share_secret
          ~drbg:(Hashes.Drbg.fork drbg (string_of_int trial))
          ~modulus:q ~secret ~n ~k
      in
      (* a random k-subset *)
      let idx = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Hashes.Drbg.int drbg (i + 1) in
        let tmp = idx.(i) in
        idx.(i) <- idx.(j);
        idx.(j) <- tmp
      done;
      let subset = List.init k (fun i -> shares.(idx.(i))) in
      let rec_ = Crypto.Shamir.interpolate ~modulus:q ~shares:subset ~at:0 in
      if not (Bignum.Nat.equal rec_ secret) then
        Alcotest.failf "trial %d (n=%d k=%d): reconstruction failed" trial n k
    done);
]
