(* Hash, HMAC and DRBG tests against published vectors. *)

let hex = Hashes.Sha256.hex_of_digest

let check_hex name expected actual = Alcotest.(check string) name expected (hex actual)

let sha256_vectors = [
  (* FIPS 180-4 / NIST CAVS *)
  "", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  "abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  String.make 1_000_000 'a',
  "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
]

let sha1_vectors = [
  "", "da39a3ee5e6b4b0d3255bfef95601890afd80709";
  "abc", "a9993e364706816aba3e25717850c26c9cd0d89d";
  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
  "84983e441c3bd26ebaae4aa1f95129e5e54670f1";
  String.make 1_000_000 'a', "34aa973cd4c4daa4f61eeb2bdbad27316534016f";
]

let suite = [
  Alcotest.test_case "sha256 vectors" `Quick (fun () ->
    List.iter
      (fun (msg, want) ->
        check_hex (Printf.sprintf "len %d" (String.length msg)) want
          (Hashes.Sha256.digest msg))
      sha256_vectors);

  Alcotest.test_case "sha1 vectors" `Quick (fun () ->
    List.iter
      (fun (msg, want) ->
        check_hex (Printf.sprintf "len %d" (String.length msg)) want
          (Hashes.Sha1.digest msg))
      sha1_vectors);

  Alcotest.test_case "sha256 incremental = one-shot" `Quick (fun () ->
    let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
    (* feed in awkward chunk sizes crossing block boundaries *)
    List.iter
      (fun chunk ->
        let ctx = Hashes.Sha256.init () in
        let pos = ref 0 in
        while !pos < String.length msg do
          let take = min chunk (String.length msg - !pos) in
          Hashes.Sha256.feed_string ctx (String.sub msg !pos take);
          pos := !pos + take
        done;
        Alcotest.(check string) (Printf.sprintf "chunk %d" chunk)
          (hex (Hashes.Sha256.digest msg)) (hex (Hashes.Sha256.finish ctx)))
      [ 1; 3; 63; 64; 65; 127; 999 ]);

  Alcotest.test_case "sha256 padding boundary lengths" `Quick (fun () ->
    (* lengths around the 55/56-byte padding edge must not collide *)
    let digests =
      List.init 130 (fun i -> hex (Hashes.Sha256.digest (String.make i 'x')))
    in
    let distinct = List.sort_uniq compare digests in
    Alcotest.(check int) "all distinct" 130 (List.length distinct));

  Alcotest.test_case "digest_list equals concatenation" `Quick (fun () ->
    Alcotest.(check string) "equal"
      (hex (Hashes.Sha256.digest "foobarbaz"))
      (hex (Hashes.Sha256.digest_list [ "foo"; "bar"; "baz" ])));

  Alcotest.test_case "hmac-sha256 rfc4231" `Quick (fun () ->
    (* RFC 4231 test case 1 *)
    let key = String.make 20 '\x0b' in
    check_hex "tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
      (Hashes.Hmac.mac ~algo:Hashes.Hmac.SHA256 ~key "Hi There");
    (* RFC 4231 test case 2 *)
    check_hex "tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
      (Hashes.Hmac.mac ~algo:Hashes.Hmac.SHA256 ~key:"Jefe"
         "what do ya want for nothing?");
    (* long key (> block size) forces the key-hash path *)
    let longkey = String.make 131 '\xaa' in
    check_hex "tc6" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
      (Hashes.Hmac.mac ~algo:Hashes.Hmac.SHA256 ~key:longkey
         "Test Using Larger Than Block-Size Key - Hash Key First"));

  Alcotest.test_case "hmac-sha1 rfc2202" `Quick (fun () ->
    let key = String.make 20 '\x0b' in
    check_hex "tc1" "b617318655057264e28bc0b6fb378c8ef146be00"
      (Hashes.Hmac.mac ~algo:Hashes.Hmac.SHA1 ~key "Hi There"));

  Alcotest.test_case "hmac verify accepts/rejects" `Quick (fun () ->
    let tag = Hashes.Hmac.mac ~algo:Hashes.Hmac.SHA256 ~key:"k" "msg" in
    Alcotest.(check bool) "good" true
      (Hashes.Hmac.verify ~algo:Hashes.Hmac.SHA256 ~key:"k" ~tag "msg");
    Alcotest.(check bool) "bad msg" false
      (Hashes.Hmac.verify ~algo:Hashes.Hmac.SHA256 ~key:"k" ~tag "msg2");
    Alcotest.(check bool) "bad key" false
      (Hashes.Hmac.verify ~algo:Hashes.Hmac.SHA256 ~key:"k2" ~tag "msg");
    Alcotest.(check bool) "truncated tag" false
      (Hashes.Hmac.verify ~algo:Hashes.Hmac.SHA256 ~key:"k"
         ~tag:(String.sub tag 0 10) "msg"));

  Alcotest.test_case "drbg determinism" `Quick (fun () ->
    let a = Hashes.Drbg.create ~seed:"s" in
    let b = Hashes.Drbg.create ~seed:"s" in
    Alcotest.(check string) "same stream" (Hashes.Drbg.bytes a 100) (Hashes.Drbg.bytes b 100);
    let c = Hashes.Drbg.create ~seed:"s'" in
    Alcotest.(check bool) "different seed differs" true
      (Hashes.Drbg.bytes c 100 <> Hashes.Drbg.bytes (Hashes.Drbg.create ~seed:"s") 100));

  Alcotest.test_case "drbg chunking irrelevant" `Quick (fun () ->
    let a = Hashes.Drbg.create ~seed:"s" in
    let b = Hashes.Drbg.create ~seed:"s" in
    let one = Hashes.Drbg.bytes a 64 in
    let parts = String.concat "" (List.init 64 (fun _ -> Hashes.Drbg.bytes b 1)) in
    Alcotest.(check string) "equal" one parts);

  Alcotest.test_case "drbg int bounds" `Quick (fun () ->
    let d = Hashes.Drbg.create ~seed:"ints" in
    for _ = 1 to 1000 do
      let v = Hashes.Drbg.int d 7 in
      if v < 0 || v >= 7 then Alcotest.fail "out of range"
    done;
    Alcotest.check_raises "zero bound" (Invalid_argument "Drbg.int: non-positive bound")
      (fun () -> ignore (Hashes.Drbg.int d 0)));

  Alcotest.test_case "drbg int covers range" `Quick (fun () ->
    let d = Hashes.Drbg.create ~seed:"cover" in
    let seen = Array.make 10 false in
    for _ = 1 to 500 do seen.(Hashes.Drbg.int d 10) <- true done;
    Alcotest.(check bool) "all hit" true (Array.for_all (fun x -> x) seen));

  Alcotest.test_case "drbg fork independence" `Quick (fun () ->
    let d = Hashes.Drbg.create ~seed:"s" in
    let f1 = Hashes.Drbg.fork d "a" in
    let f2 = Hashes.Drbg.fork d "b" in
    Alcotest.(check bool) "forks differ" true
      (Hashes.Drbg.bytes f1 32 <> Hashes.Drbg.bytes f2 32));

  Alcotest.test_case "drbg reseed changes stream" `Quick (fun () ->
    let d = Hashes.Drbg.create ~seed:"s" in
    let before = Hashes.Drbg.bytes d 32 in
    Hashes.Drbg.reseed d "extra";
    Alcotest.(check bool) "differs" true (before <> Hashes.Drbg.bytes d 32));

  Alcotest.test_case "drbg float in bounds" `Quick (fun () ->
    let d = Hashes.Drbg.create ~seed:"floats" in
    for _ = 1 to 100 do
      let v = Hashes.Drbg.float d 2.5 in
      if v < 0.0 || v >= 2.5 then Alcotest.fail "out of range"
    done);
]
