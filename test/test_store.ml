(* Tests for the durability subsystem (lib/store + Sintra.Durable): log
   framing and replay determinism, CRC corruption detection, torn-tail
   tolerance, checkpoint-certificate forgery rejection, GC safety (never
   dropping undelivered rounds), crash + restart from disk, snapshot
   state transfer to a wiped party, bounded DECIDED backlog, and
   byte-identical delivery order with and without the durability layer. *)

open Sintra

let sample_records : Store.Log.record list =
  [
    Store.Log.Round { round = 0; batch = "batch-zero" };
    Store.Log.Delta { key = "opt.epoch"; data = "\x01\x02" };
    Store.Log.Round { round = 1; batch = String.make 300 'x' };
    Store.Log.Snapshot
      {
        checkpoint = { Store.Checkpoint.round = 2; digest = "d"; cert = "c" };
        state = "state-blob";
      };
  ]

(* --- a durable 4-party atomic cluster harness --- *)

type harness = {
  c : Cluster.t;
  chans : Atomic_channel.t array;
  durs : Durable.t array;
  devs : Store.Device.t array;
  logs : (int * string) list ref array;
  seen : (int * string, unit) Hashtbl.t array;
}

(* The recorder models an idempotent application: a restart replays the
   log, re-delivering payloads the app already consumed before the crash,
   and the app deduplicates them (payloads are unique in these tests). *)
let make_party (c : Cluster.t) (devs : Store.Device.t array)
    (logs : (int * string) list ref array)
    (seen : (int * string, unit) Hashtbl.t array) (i : int) ~(interval : int)
    ~(pid : string) : Atomic_channel.t * Durable.t =
  let rt = Cluster.runtime c i in
  let ch =
    Atomic_channel.create rt ~pid
      ~on_deliver:(fun ~sender m ->
        if not (Hashtbl.mem seen.(i) (sender, m)) then begin
          Hashtbl.replace seen.(i) (sender, m) ();
          logs.(i) := (sender, m) :: !(logs.(i))
        end)
      ()
  in
  let d = Durable.attach rt ~chan:ch ~pid ~dev:devs.(i) ~interval () in
  (ch, d)

let attach_party (h : harness) (i : int) ~(interval : int) ~(pid : string) :
    unit =
  let ch, d = make_party h.c h.devs h.logs h.seen i ~interval ~pid in
  h.chans.(i) <- ch;
  h.durs.(i) <- d

let durable_cluster ?(seed = "store") ?(interval = 4) ?(pid = "dur") () :
    harness =
  let n = 4 in
  let c = Util.cluster ~seed ~max_batch:8 () in
  let devs = Array.init n (fun _ -> Store.Device.mem ()) in
  let logs = Array.init n (fun _ -> ref []) in
  let seen = Array.init n (fun _ -> Hashtbl.create 64) in
  let parties =
    Array.init n (fun i -> make_party c devs logs seen i ~interval ~pid)
  in
  {
    c;
    chans = Array.map fst parties;
    durs = Array.map snd parties;
    devs;
    logs;
    seen;
  }

let sequences (h : harness) = Array.map (fun l -> List.rev !l) h.logs

(* Waves of payloads from every party.  Injections on a crashed party are
   dropped by the network, so a party that is down during a wave simply
   never submits those payloads. *)
let send_waves (h : harness) ~(waves : int) ~(per : int) : unit =
  for w = 0 to waves - 1 do
    let time = 0.8 *. float_of_int w in
    for p = 0 to 3 do
      let submit () =
        Cluster.inject h.c p (fun () ->
          for k = 0 to per - 1 do
            Atomic_channel.send h.chans.(p)
              (Printf.sprintf "p%d.w%d.%d" p w k)
          done)
      in
      if time <= 0.0 then submit () else Cluster.at h.c ~time submit
    done
  done

let suite =
  [
    Alcotest.test_case "log round-trip is byte-deterministic" `Quick (fun () ->
      let dev = Store.Device.mem () in
      List.iter (fun r -> ignore (Store.Log.append dev r)) sample_records;
      let first = Store.Device.contents dev in
      let rp = Store.Log.replay dev in
      (match rp.Store.Log.status with
       | Store.Log.Complete -> ()
       | _ -> Alcotest.fail "replay not complete");
      Alcotest.(check int)
        "record count" (List.length sample_records)
        (List.length rp.Store.Log.records);
      (* Re-encoding the replayed records reproduces the device bytes. *)
      let dev2 = Store.Device.mem () in
      ignore (Store.Log.rewrite dev2 rp.Store.Log.records);
      Alcotest.(check string) "byte identical" first
        (Store.Device.contents dev2);
      (* And the decoded records match what was written. *)
      if rp.Store.Log.records <> sample_records then
        Alcotest.fail "replayed records differ");
    Alcotest.test_case "torn tail keeps the valid prefix" `Quick (fun () ->
      let dev = Store.Device.mem () in
      List.iter (fun r -> ignore (Store.Log.append dev r)) sample_records;
      let bytes = Store.Device.contents dev in
      (* Cut mid-record: drop the last 3 bytes. *)
      let cut = String.sub bytes 0 (String.length bytes - 3) in
      let rp = Store.Log.replay_string cut in
      (match rp.Store.Log.status with
       | Store.Log.Torn _ -> ()
       | _ -> Alcotest.fail "expected a torn tail");
      Alcotest.(check int) "prefix kept"
        (List.length sample_records - 1)
        (List.length rp.Store.Log.records));
    Alcotest.test_case "CRC detects a flipped byte" `Quick (fun () ->
      let dev = Store.Device.mem () in
      List.iter (fun r -> ignore (Store.Log.append dev r)) sample_records;
      let bytes = Bytes.of_string (Store.Device.contents dev) in
      (* Flip one byte inside the second record's payload. *)
      let first_len =
        String.length (Store.Log.frame (List.hd sample_records))
      in
      let pos = first_len + 10 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
      let rp = Store.Log.replay_string (Bytes.to_string bytes) in
      (match rp.Store.Log.status with
       | Store.Log.Corrupt (off, _) ->
         Alcotest.(check int) "corruption located" first_len off
       | _ -> Alcotest.fail "expected corruption");
      Alcotest.(check int) "prefix kept" 1 (List.length rp.Store.Log.records));
    Alcotest.test_case "crc32 matches the IEEE reference" `Quick (fun () ->
      (* Standard check value: crc32("123456789") = 0xCBF43926. *)
      Alcotest.(check int) "check value" 0xCBF43926
        (Store.Crc.digest "123456789");
      Alcotest.(check int) "incremental" (Store.Crc.digest "123456789")
        (Store.Crc.update (Store.Crc.digest "12345") "6789"));
    Alcotest.test_case "durable run checkpoints, GCs and stays ordered"
      `Quick (fun () ->
      let h = durable_cluster ~seed:"dur-basic" ~interval:2 () in
      send_waves h ~waves:4 ~per:4;
      ignore (Cluster.run h.c ~until:300.0);
      let seqs = sequences h in
      Util.check_all_equal "total order" (Array.to_list seqs);
      Alcotest.(check int) "all delivered" (4 * 4 * 4)
        (List.length seqs.(0));
      Array.iteri
        (fun i d ->
          if Durable.checkpoints d < 1 then
            Alcotest.failf "party %d saw no stable checkpoint" i;
          (* The backlog was GC'd below the last stable checkpoint. *)
          let floor = Atomic_channel.gc_floor h.chans.(i) in
          if floor < 1 then Alcotest.failf "party %d never raised its floor" i)
        h.durs;
      (* The log was compacted: it replays to a snapshot plus bounded
         history, not the full round sequence. *)
      let rp = Store.Log.replay h.devs.(0) in
      (match rp.Store.Log.records with
       | Store.Log.Snapshot _ :: _ -> ()
       | _ -> Alcotest.fail "compacted log must start with a snapshot"));
    Alcotest.test_case "gc_below never drops undelivered rounds" `Quick
      (fun () ->
      let h = durable_cluster ~seed:"gc-safe" ~interval:0 () in
      send_waves h ~waves:2 ~per:2;
      ignore (Cluster.run h.c ~until:300.0);
      let ch = h.chans.(0) in
      let base = Atomic_channel.current_round ch in
      Alcotest.(check bool) "some rounds ran" true (base > 0);
      (* Ask to GC far beyond the delivered prefix: the floor must clamp
         at base — rounds at/after it (the reorder buffer) survive. *)
      Atomic_channel.gc_below ch ~round:(base + 1000);
      Alcotest.(check int) "floor clamped at base" base
        (Atomic_channel.gc_floor ch);
      (* The channel still works: more payloads deliver normally. *)
      let before = Atomic_channel.deliveries ch in
      Cluster.inject h.c 0 (fun () ->
        Atomic_channel.send h.chans.(0) "post-gc");
      ignore (Cluster.run h.c ~until:600.0);
      Alcotest.(check bool) "post-GC delivery" true
        (Atomic_channel.deliveries ch > before));
    Alcotest.test_case "crash + restart replays the disk byte for byte"
      `Quick (fun () ->
      let h = durable_cluster ~seed:"dur-crash" ~interval:4 () in
      let rt3 = Cluster.runtime h.c 3 in
      Runtime.on_rebuild rt3 (fun () ->
        attach_party h 3 ~interval:4 ~pid:"dur");
      send_waves h ~waves:4 ~per:4;
      Cluster.at h.c ~time:1.2 (fun () -> Runtime.crash rt3);
      Cluster.at h.c ~time:2.0 (fun () -> Runtime.recover rt3);
      ignore (Cluster.run h.c ~until:300.0);
      let seqs = sequences h in
      Util.check_all_equal "total order after restart" (Array.to_list seqs);
      Alcotest.(check int) "party 3 missed nothing"
        (List.length seqs.(0))
        (List.length seqs.(3));
      Alcotest.(check bool) "restart replayed logged rounds" true
        (Durable.replayed_rounds h.durs.(3) > 0
        || Durable.restored_from h.durs.(3) >= 0));
    Alcotest.test_case "wiped party adopts a verified snapshot" `Quick
      (fun () ->
      let h = durable_cluster ~seed:"dur-wipe" ~interval:2 () in
      let rt3 = Cluster.runtime h.c 3 in
      Runtime.on_rebuild rt3 (fun () ->
        (* Disk lost: restart party 3 on a fresh device — it must fetch a
           signed snapshot from its peers instead of replaying history. *)
        h.devs.(3) <- Store.Device.mem ();
        Hashtbl.reset h.seen.(3);
        h.logs.(3) := [];
        attach_party h 3 ~interval:2 ~pid:"dur");
      send_waves h ~waves:6 ~per:4;
      Cluster.at h.c ~time:2.6 (fun () -> Runtime.crash rt3);
      Cluster.at h.c ~time:4.4 (fun () -> Runtime.recover rt3);
      ignore (Cluster.run h.c ~until:300.0);
      let seqs = sequences h in
      Util.check_all_equal "parties 0-2 agree"
        [ seqs.(0); seqs.(1); seqs.(2) ];
      Alcotest.(check bool) "party 3 adopted a snapshot" true
        (Durable.snapshots_adopted h.durs.(3) >= 1);
      (* Its (post-wipe) deliveries are a suffix of the agreed order. *)
      let full = seqs.(0) and part = seqs.(3) in
      let missing = List.length full - List.length part in
      Alcotest.(check bool) "suffix not longer than full" true (missing >= 0);
      let suffix = List.filteri (fun i _ -> i >= missing) full in
      if part <> suffix then
        Alcotest.fail "snapshot adopter's deliveries are not a suffix";
      Alcotest.(check bool) "snapshot skipped real history" true (missing > 0));
    Alcotest.test_case "tampered disk is distrusted, then re-fetched" `Quick
      (fun () ->
      (* Produce a compacted log with a snapshot, then corrupt the
         certificate: the restore must reject the whole device (certified
         state is never adopted unverified) and recover via the network. *)
      let h = durable_cluster ~seed:"dur-tamper" ~interval:2 () in
      send_waves h ~waves:4 ~per:4;
      ignore (Cluster.run h.c ~until:300.0);
      let rp = Store.Log.replay h.devs.(3) in
      (match rp.Store.Log.records with
       | Store.Log.Snapshot _ :: _ -> ()
       | _ -> Alcotest.fail "expected a compacted log");
      let tampered =
        List.map
          (fun r ->
            match r with
            | Store.Log.Snapshot { checkpoint; state } ->
              let cert = checkpoint.Store.Checkpoint.cert in
              let bad =
                String.mapi
                  (fun i ch ->
                    if i = 0 then Char.chr (Char.code ch lxor 1) else ch)
                  cert
              in
              Store.Log.Snapshot
                {
                  checkpoint = { checkpoint with Store.Checkpoint.cert = bad };
                  state;
                }
            | r -> r)
          rp.Store.Log.records
      in
      let rt3 = Cluster.runtime h.c 3 in
      Runtime.on_rebuild rt3 (fun () ->
        let dev = Store.Device.mem () in
        ignore (Store.Log.rewrite dev tampered);
        h.devs.(3) <- dev;
        Hashtbl.reset h.seen.(3);
        h.logs.(3) := [];
        attach_party h 3 ~interval:2 ~pid:"dur");
      let t0 = Cluster.now h.c in
      Cluster.at h.c ~time:(t0 +. 0.2) (fun () -> Runtime.crash rt3);
      Cluster.at h.c ~time:(t0 +. 0.8) (fun () -> Runtime.recover rt3);
      (* Fresh traffic so the cluster keeps moving and serves catch-up. *)
      for p = 0 to 2 do
        Cluster.at h.c ~time:(t0 +. 1.4) (fun () ->
          Cluster.inject h.c p (fun () ->
            Atomic_channel.send h.chans.(p) (Printf.sprintf "late-%d" p)))
      done;
      ignore (Cluster.run h.c ~until:(t0 +. 300.0));
      Alcotest.(check int) "tampered snapshot not restored" (-1)
        (Durable.restored_from h.durs.(3));
      Alcotest.(check bool) "recovered via network snapshot" true
        (Durable.snapshots_adopted h.durs.(3) >= 1));
    Alcotest.test_case "forged certificates never verify" `Quick (fun () ->
      (* Directly attack the verification predicate: t parties' shares
         cannot assemble a valid certificate, and a certificate for one
         statement does not transfer to another. *)
      let c = Util.cluster ~seed:"forge" () in
      let rt0 = Cluster.runtime c 0 in
      let pub = Tsig.public_of_secret rt0.Runtime.keys.Dealer.ag_tsig in
      let k = Tsig.k pub in
      Alcotest.(check bool) "quorum above t" true (k > 1);
      let stmt = Store.Checkpoint.statement ~pid:"dur" ~round:8 ~digest:"dg" in
      let drbg = Hashes.Drbg.create ~seed:"forge-drbg" in
      (* Only t = 1 party colludes: its share, however duplicated, must not
         assemble into a verifying certificate. *)
      let share =
        Tsig.release ~drbg rt0.Runtime.keys.Dealer.ag_tsig ~ctx:"x" stmt
      in
      (match Tsig.assemble pub ~ctx:"x" stmt (List.init k (fun _ -> share)) with
       | exception _ -> ()
       | forged ->
         Alcotest.(check bool) "t-of-n forgery rejected" false
           (Tsig.verify pub ~ctx:"x" ~signature:forged stmt));
      (* A real certificate for round 8 does not certify round 12. *)
      let shares =
        List.init k (fun i ->
          let rt = Cluster.runtime c i in
          Tsig.release ~drbg rt.Runtime.keys.Dealer.ag_tsig ~ctx:"x" stmt)
      in
      let cert = Tsig.assemble pub ~ctx:"x" stmt shares in
      Alcotest.(check bool) "genuine certificate verifies" true
        (Tsig.verify pub ~ctx:"x" ~signature:cert stmt);
      let other =
        Store.Checkpoint.statement ~pid:"dur" ~round:12 ~digest:"dg"
      in
      Alcotest.(check bool) "certificate bound to its statement" false
        (Tsig.verify pub ~ctx:"x" ~signature:cert other));
    Alcotest.test_case "backlog stays bounded under checkpointing" `Quick
      (fun () ->
      let h = durable_cluster ~seed:"dur-bound" ~interval:2 () in
      send_waves h ~waves:8 ~per:2;
      let hi = ref 0 in
      let dt = 0.05 in
      for k = 1 to int_of_float (20.0 /. dt) do
        Cluster.at h.c ~time:(float_of_int k *. dt) (fun () ->
          let v = Atomic_channel.backlog_rounds h.chans.(0) in
          if v > !hi then hi := v)
      done;
      ignore (Cluster.run h.c ~until:300.0);
      let rounds = Atomic_channel.rounds_completed h.chans.(0) in
      Alcotest.(check bool) "enough rounds to matter" true (rounds > 6);
      (* Bound: the checkpoint interval (history until the next checkpoint
         stabilizes) plus one interval of GC slack retained below the
         stable round (straggler catch-up) plus the pipeline window plus
         certificate slack. *)
      let pd = h.c.Cluster.cfg.Config.pipeline_depth in
      let bound = 2 + 2 + (2 * pd) + 4 in
      if !hi > bound then
        Alcotest.failf "backlog reached %d (bound %d, rounds %d)" !hi bound
          rounds);
    Alcotest.test_case "durability does not change the delivery order"
      `Quick (fun () ->
      let run durable =
        let n = 4 in
        let c = Util.cluster ~seed:"dur-ident" ~max_batch:8 () in
        let logs = Array.init n (fun _ -> ref []) in
        let chans =
          Array.init n (fun i ->
            Atomic_channel.create (Cluster.runtime c i) ~pid:"ident"
              ~on_deliver:(fun ~sender m ->
                logs.(i) := (sender, m) :: !(logs.(i)))
              ())
        in
        if durable then
          Array.iteri
            (fun i ch ->
              ignore
                (Durable.attach (Cluster.runtime c i) ~chan:ch ~pid:"ident"
                   ~dev:(Store.Device.mem ()) ~interval:2 ()))
            chans;
        for p = 0 to n - 1 do
          for w = 0 to 2 do
            let submit () =
              Cluster.inject c p (fun () ->
                for k = 0 to 2 do
                  Atomic_channel.send chans.(p)
                    (Printf.sprintf "p%d.w%d.%d" p w k)
                done)
            in
            if w = 0 then submit ()
            else Cluster.at c ~time:(0.8 *. float_of_int w) submit
          done
        done;
        ignore (Cluster.run c ~until:300.0);
        List.rev !(logs.(0))
      in
      let plain = run false and durable = run true in
      Alcotest.(check int) "same delivery count" (List.length plain)
        (List.length durable);
      if plain <> durable then
        Alcotest.fail "durable delivery order diverged from the plain run");
    Alcotest.test_case "optimistic epoch deltas reach the log" `Quick
      (fun () ->
      (* Observe an optimistic channel from a durability controller;
         crashing the epoch-0 leader forces an epoch change, whose delta
         must land in the WAL under the "opt.epoch" key. *)
      let c = Util.cluster ~seed:"dur-opt" () in
      let n = 4 in
      let dev = Store.Device.mem () in
      let logs = Array.init n (fun _ -> ref []) in
      let ochans =
        Array.init n (fun i ->
          Optimistic_channel.create ~timeout:1.0 (Cluster.runtime c i)
            ~pid:"opt"
            ~on_deliver:(fun ~sender m ->
              logs.(i) := (sender, m) :: !(logs.(i)))
            ())
      in
      let ch =
        Atomic_channel.create (Cluster.runtime c 1) ~pid:"dur-side"
          ~on_deliver:(fun ~sender:_ _ -> ())
          ()
      in
      let d =
        Durable.attach (Cluster.runtime c 1) ~chan:ch ~pid:"dur-side" ~dev
          ~interval:0 ()
      in
      Durable.observe_optimistic d ochans.(1);
      Cluster.crash c 0;
      Cluster.at c ~time:0.2 (fun () ->
        Cluster.inject c 1 (fun () ->
          Optimistic_channel.send ochans.(1) "needs-epoch-change"));
      ignore (Cluster.run c ~until:120.0);
      Alcotest.(check bool) "epoch advanced" true
        (Optimistic_channel.current_epoch ochans.(1) >= 1);
      let rp = Store.Log.replay dev in
      let has_delta =
        List.exists
          (function
            | Store.Log.Delta { key; _ } -> key = "opt.epoch"
            | _ -> false)
          rp.Store.Log.records
      in
      Alcotest.(check bool) "epoch delta logged" true has_delta);
  ]
