(* Robustness: every protocol handler is fed adversarial garbage — random
   bytes, truncated encodings, mis-tagged messages — and must neither crash
   nor lose its safety/liveness afterwards.  A corrupted party controls
   every byte it sends, so this is the protocol-level analogue of the wire
   fuzz tests. *)

open Sintra

let fuzz_bodies ~(seed : string) ~(count : int) : string list =
  let d = Hashes.Drbg.create ~seed in
  List.init count (fun _ ->
    let len = Hashes.Drbg.int d 120 in
    Hashes.Drbg.bytes d len)

(* Send garbage from party 0 to all parties on [pid], before and after the
   honest workload starts. *)
let flood (c : Cluster.t) ~(pid : string) ~(seed : string) : unit =
  Cluster.inject c 0 (fun () ->
    let rt = Cluster.runtime c 0 in
    List.iter
      (fun body ->
        for dst = 0 to Cluster.n c - 1 do
          Runtime.send rt ~dst ~pid body
        done)
      (fuzz_bodies ~seed ~count:30))

let suite = [
  Alcotest.test_case "reliable broadcast survives garbage" `Quick (fun () ->
    let c = Util.cluster ~seed:"fz-rbc" () in
    let got = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Reliable_broadcast.create (Cluster.runtime c i) ~pid:"fz" ~sender:1
          ~on_deliver:(fun m -> got.(i) <- Some m))
    in
    flood c ~pid:"fz" ~seed:"g1";
    Cluster.inject c 1 (fun () -> Reliable_broadcast.send insts.(1) "real payload");
    flood c ~pid:"fz" ~seed:"g2";
    ignore (Cluster.run c);
    List.iter
      (fun i ->
        Alcotest.(check (option string)) "delivered" (Some "real payload") got.(i))
      [ 1; 2; 3 ]);

  Alcotest.test_case "consistent broadcast survives garbage" `Quick (fun () ->
    let c = Util.cluster ~seed:"fz-cbc" () in
    let got = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Consistent_broadcast.create (Cluster.runtime c i) ~pid:"fz" ~sender:1
          ~on_deliver:(fun m -> got.(i) <- Some m))
    in
    flood c ~pid:"fz" ~seed:"g3";
    Cluster.inject c 1 (fun () -> Consistent_broadcast.send insts.(1) "echo me");
    ignore (Cluster.run c);
    List.iter
      (fun i -> Alcotest.(check (option string)) "delivered" (Some "echo me") got.(i))
      [ 1; 2; 3 ]);

  Alcotest.test_case "binary agreement survives garbage" `Quick (fun () ->
    let c = Util.cluster ~seed:"fz-aba" () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 3 (fun k ->
        let i = k + 1 in
        Binary_agreement.create (Cluster.runtime c i) ~pid:"fz"
          ~on_decide:(fun b _ -> decided.(i) <- Some b))
    in
    flood c ~pid:"fz" ~seed:"g4";
    Array.iteri
      (fun k inst ->
        Cluster.inject c (k + 1) (fun () -> Binary_agreement.propose inst true))
      insts;
    ignore (Cluster.run c);
    for i = 1 to 3 do
      Alcotest.(check (option bool)) "decided true" (Some true) decided.(i)
    done);

  Alcotest.test_case "atomic channel survives garbage on every sub-pid" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"fz-abc" () in
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"fz"
            ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
      in
      (* hit the channel pid and the inner MVBA/VCBC/VBA namespaces *)
      List.iter
        (fun pid -> flood c ~pid ~seed:("g5" ^ pid))
        [ "fz"; "fz/mv.0"; "fz/mv.0/p.1"; "fz/mv.0/ba.0"; "fz/mv.0/ba.2" ];
      Cluster.inject c 1 (fun () -> Atomic_channel.send chans.(1) "genuine");
      ignore (Cluster.run c);
      let seqs = Array.map (fun l -> List.rev !l) logs in
      Util.check_all_equal "order" (Array.to_list seqs);
      Alcotest.(check (list (pair int string))) "only genuine" [ (1, "genuine") ]
        seqs.(0));

  Alcotest.test_case "secure channel survives garbage decryption shares" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"fz-sac" () in
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun i ->
          Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"fz"
            ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
      in
      flood c ~pid:"fz/dec" ~seed:"g6";
      Cluster.inject c 2 (fun () -> Secure_atomic_channel.send chans.(2) "sealed");
      flood c ~pid:"fz/dec" ~seed:"g7";
      ignore (Cluster.run c);
      List.iter
        (fun i ->
          Alcotest.(check (list (pair int string))) "decrypted"
            [ (2, "sealed") ] (List.rev !(logs.(i))))
        [ 1; 2; 3 ]);

  Alcotest.test_case "optimistic channel survives garbage" `Quick (fun () ->
    let c = Util.cluster ~seed:"fz-opt" () in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Optimistic_channel.create ~timeout:2.0 (Cluster.runtime c i) ~pid:"fz"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    flood c ~pid:"fz" ~seed:"g8";
    flood c ~pid:"fz/e.0.0" ~seed:"g9";
    Cluster.inject c 1 (fun () -> Optimistic_channel.send chans.(1) "fast path");
    ignore (Cluster.run c ~until:120.0);
    let seqs = Array.map (fun l -> List.rev !l) logs in
    Util.check_all_equal "order" (Array.to_list seqs);
    Alcotest.(check bool) "delivered" true (List.mem (1, "fast path") seqs.(0)));

  Alcotest.test_case "orphan buffer is bounded" `Quick (fun () ->
    let c = Util.cluster ~seed:"fz-orphan" () in
    let rt0 = Cluster.runtime c 0 in
    let rt1 = Cluster.runtime c 1 in
    (* flood an unregistered pid far past the cap *)
    for batch = 0 to 5 do
      Cluster.inject c 0 (fun () ->
        for k = 0 to 999 do
          Runtime.send rt0 ~dst:1 ~pid:"never-registered"
            (Printf.sprintf "junk %d.%d" batch k)
        done)
    done;
    ignore (Cluster.run c);
    Alcotest.(check bool) "dropped some" true (rt1.Runtime.dropped_orphans > 0);
    (match Hashtbl.find_opt rt1.Runtime.orphans "never-registered" with
     | Some q -> Alcotest.(check bool) "bounded" true (Queue.length q <= 4096)
     | None -> Alcotest.fail "expected an orphan queue"));

  Alcotest.test_case "forged main-vote justification is rejected" `Quick (fun () ->
    (* A Byzantine party claims a main-vote for true justified by a
       threshold signature over the *false* pre-vote statement; honest
       parties must ignore it and settle on their own proposals. *)
    let c = Util.cluster ~seed:"fz-mj" () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 3 (fun k ->
        let i = k + 1 in
        Binary_agreement.create (Cluster.runtime c i) ~pid:"aba"
          ~on_decide:(fun b _ -> decided.(i) <- Some b))
    in
    Cluster.inject c 0 (fun () ->
      let rt = Cluster.runtime c 0 in
      (* a correctly signed share for the main statement... *)
      let share =
        Tsig.release ~drbg:rt.Runtime.drbg rt.Runtime.keys.Dealer.ag_tsig
          ~ctx:"aba" "aba-main|aba|1|true"
      in
      (* ...but a justification that cannot verify *)
      let body =
        Wire.encode (fun b ->
          Wire.Enc.u8 b 1;            (* MAINVOTE *)
          Wire.Enc.int b 1;           (* round *)
          Wire.Enc.u8 b 1;            (* value true *)
          Tsig.enc_share b share;
          Wire.Enc.u8 b 0;            (* MJ_value *)
          Wire.Enc.bytes b "not a threshold signature")
      in
      for dst = 1 to 3 do Runtime.send rt ~dst ~pid:"aba" body done);
    Array.iteri
      (fun k inst ->
        Cluster.inject c (k + 1) (fun () -> Binary_agreement.propose inst false))
      insts;
    ignore (Cluster.run c);
    for i = 1 to 3 do
      Alcotest.(check (option bool)) "honest value wins" (Some false) decided.(i)
    done);
]
