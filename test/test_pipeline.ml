(* Tests for pipelined atomic broadcast: the reorder buffer, the bounded
   window, catch-up across an open window, adaptive batching, and exact
   equivalence of pipeline_depth = 1 with the sequential protocol. *)

open Sintra

let make_atomic ?(n = 4) (c : Cluster.t) pid =
  let logs = Array.init n (fun _ -> ref []) in
  let chans =
    Array.init n (fun i ->
      Atomic_channel.create (Cluster.runtime c i) ~pid
        ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i)))
        ())
  in
  (chans, logs)

let sequences logs = Array.map (fun l -> List.rev !l) logs

(* Sample a per-channel statistic at fine intervals and keep the maximum
   observed value (the probes piggyback on the virtual clock, so they are
   deterministic). *)
let probe_max (c : Cluster.t) ~(until : float) (f : unit -> int) : int ref =
  let hi = ref 0 in
  let dt = 0.02 in
  let steps = int_of_float (until /. dt) in
  for k = 1 to steps do
    Cluster.at c ~time:(float_of_int k *. dt) (fun () ->
      let v = f () in
      if v > !hi then hi := v)
  done;
  hi

let check_fifo (seq : (int * string) list) =
  (* per-sender delivery order must match per-sender send order, which in
     these scenarios is the lexicographic payload order *)
  let per_sender = Hashtbl.create 8 in
  List.iter
    (fun (s, m) ->
      let prev = try Hashtbl.find per_sender s with Not_found -> "" in
      if not (prev < m) then
        Alcotest.failf "sender %d: %s delivered after %s" s m prev;
      Hashtbl.replace per_sender s m)
    seq

let suite = [
  Alcotest.test_case "pipeline_depth = 1 reproduces the sequential protocol"
    `Quick (fun () ->
      (* Golden delivery log captured from the strictly sequential channel
         (one round in flight at a time) before pipelining was introduced:
         the pipelined code at depth 1 must reproduce it byte for byte —
         same deliveries, same order, same round count. *)
      let c =
        Util.cluster ~seed:"golden-pipeline" ~max_batch:8 ~pipeline_depth:1 ()
      in
      let chans, logs = make_atomic c "golden" in
      Cluster.inject c 0 (fun () ->
        for k = 0 to 5 do
          Atomic_channel.send chans.(0) (Printf.sprintf "p0.a%d" k)
        done);
      Cluster.at c ~time:0.3 (fun () ->
        Cluster.inject c 1 (fun () ->
          for k = 0 to 5 do
            Atomic_channel.send chans.(1) (Printf.sprintf "p1.a%d" k)
          done));
      Cluster.at c ~time:1.2 (fun () ->
        Cluster.inject c 2 (fun () ->
          for k = 0 to 3 do
            Atomic_channel.send chans.(2) (Printf.sprintf "p2.a%d" k)
          done));
      Cluster.at c ~time:2.0 (fun () ->
        Cluster.inject c 0 (fun () ->
          for k = 0 to 2 do
            Atomic_channel.send chans.(0) (Printf.sprintf "p0.b%d" k)
          done));
      ignore (Cluster.run c ~until:300.0);
      let seqs = sequences logs in
      Util.check_all_equal "total order" (Array.to_list seqs);
      let rendered =
        String.concat ""
          (List.map (fun (s, m) -> Printf.sprintf "%d:%s;" s m) seqs.(0))
      in
      let golden =
        "0:p0.a0;0:p0.a1;0:p0.a2;0:p0.a3;0:p0.a4;0:p0.a5;"
        ^ "1:p1.a0;1:p1.a1;1:p1.a2;1:p1.a3;1:p1.a4;1:p1.a5;"
        ^ "2:p2.a0;2:p2.a1;2:p2.a2;2:p2.a3;"
        ^ "0:p0.b0;0:p0.b1;0:p0.b2;"
      in
      Alcotest.(check string) "golden delivery log" golden rendered;
      Alcotest.(check int) "golden round count" 8
        (Atomic_channel.rounds_completed chans.(0)));

  Alcotest.test_case "reorder buffer: out-of-order decides deliver in order"
    `Quick (fun () ->
      (* Eclipse round 0's agreement traffic toward party 3: it decides
         rounds 1..3 first (its peers run round 0 normally among
         themselves), parks them in the reorder buffer, and may deliver
         nothing until catch-up supplies round 0 — delivery must still
         follow strict round order. *)
      let c =
        Util.cluster ~seed:"pipe-reorder" ~max_batch:64 ~pipeline_depth:4
          ~adaptive_batch:false ()
      in
      let chans, logs = make_atomic c "rb" in
      let contains frame needle =
        let nl = String.length needle and fl = String.length frame in
        let rec hit i =
          i + nl <= fl && (String.sub frame i nl = needle || hit (i + 1))
        in
        hit 0
      in
      Cluster.set_intercept c (fun ~src:_ ~dst frame ->
        if dst = 3 && contains frame "rb/mv.0" then Sim.Net.Drop
        else Sim.Net.Deliver);
      for i = 0 to 3 do
        Cluster.inject c i (fun () ->
          Atomic_channel.send chans.(i) (Printf.sprintf "m%d.0" i))
      done;
      (* fresh payloads while round 0 is dark at party 3 open deeper rounds *)
      for wave = 1 to 3 do
        Cluster.at c ~time:(0.3 *. float_of_int wave) (fun () ->
          for i = 0 to 3 do
            Cluster.inject c i (fun () ->
              Atomic_channel.send chans.(i) (Printf.sprintf "m%d.%d" i wave))
          done)
      done;
      (* A later wave INITs a round beyond party 3's window, which triggers
         its catch-up REQUEST for the eclipsed round. *)
      Cluster.at c ~time:8.0 (fun () ->
        for i = 0 to 2 do
          Cluster.inject c i (fun () ->
            Atomic_channel.send chans.(i) (Printf.sprintf "m%d.4" i))
        done);
      let parked = probe_max c ~until:12.0 (fun () ->
        Atomic_channel.reorder_depth chans.(3))
      in
      ignore (Cluster.run c ~until:300.0);
      let seqs = sequences logs in
      Util.check_all_equal "total order" (Array.to_list seqs);
      Alcotest.(check int) "all 19 delivered" 19 (List.length seqs.(0));
      Alcotest.(check int) "no duplicates" 19
        (List.length (List.sort_uniq compare seqs.(0)));
      check_fifo seqs.(0);
      Alcotest.(check bool)
        (Printf.sprintf "reorder buffer exercised (max depth %d)" !parked)
        true (!parked >= 1);
      Alcotest.(check int) "reorder buffer drained" 0
        (Atomic_channel.reorder_depth chans.(3)));

  Alcotest.test_case "window stalls at pipeline_depth and resumes" `Quick
    (fun () ->
      (* With round 0's agreement delayed for a long time, the window
         [0, depth) fills and no round beyond it may start; once round 0
         decides, the window slides and the backlog drains. *)
      let depth = 2 in
      let c =
        Util.cluster ~seed:"pipe-stall" ~max_batch:64 ~pipeline_depth:depth
          ~adaptive_batch:false ()
      in
      let chans, logs = make_atomic c "ws" in
      Cluster.set_intercept c (fun ~src:_ ~dst:_ frame ->
        let needle = "ws/mv.0" in
        let nl = String.length needle and fl = String.length frame in
        let rec hit i =
          i + nl <= fl && (String.sub frame i nl = needle || hit (i + 1))
        in
        if hit 0 then Sim.Net.Delay 4.0 else Sim.Net.Deliver);
      for wave = 0 to 5 do
        Cluster.at c ~time:(0.01 +. (0.3 *. float_of_int wave)) (fun () ->
          for i = 0 to 3 do
            Cluster.inject c i (fun () ->
              Atomic_channel.send chans.(i) (Printf.sprintf "m%d.%d" i wave))
          done)
      done;
      let inflight = probe_max c ~until:12.0 (fun () ->
        Atomic_channel.inflight_rounds chans.(0))
      in
      let stalled_base = ref (-1) in
      Cluster.at c ~time:3.0 (fun () ->
        (* round 0 still delayed: the base must not have moved *)
        stalled_base := Atomic_channel.current_round chans.(0));
      ignore (Cluster.run c ~until:300.0);
      Alcotest.(check int) "base stalled at round 0 mid-delay" 0 !stalled_base;
      Alcotest.(check bool)
        (Printf.sprintf "window bound respected (max inflight %d)" !inflight)
        true (!inflight <= depth);
      Alcotest.(check bool) "pipelining happened" true (!inflight >= 2);
      let seqs = sequences logs in
      Util.check_all_equal "total order" (Array.to_list seqs);
      Alcotest.(check int) "all 24 delivered after resume" 24
        (List.length seqs.(0));
      check_fifo seqs.(0));

  Alcotest.test_case "rebuilt party catches up across an open window" `Quick
    (fun () ->
      (* A party loses its state while several rounds are in flight, comes
         back at round 0, and must adopt the decided history before joining
         the open window — including fresh payloads of its own. *)
      let c =
        Util.cluster ~seed:"pipe-rebuild" ~max_batch:16
          ~check_invariants:true ()
      in
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans : Atomic_channel.t option array = Array.make 4 None in
      let make p =
        let rt = Cluster.runtime c p in
        chans.(p) <-
          Some
            (Atomic_channel.create rt ~pid:"pw"
               ~on_deliver:(fun ~sender m ->
                 logs.(p) := (sender, m) :: !(logs.(p)))
               ())
      in
      for p = 0 to 3 do make p done;
      let rt3 = Cluster.runtime c 3 in
      Runtime.on_rebuild rt3 (fun () ->
        logs.(3) := [];
        make 3);
      let send p m =
        Cluster.inject c p (fun () ->
          match chans.(p) with
          | Some ch -> Atomic_channel.send ch m
          | None -> ())
      in
      for p = 0 to 3 do send p (Printf.sprintf "p%d.a" p) done;
      (* keep the window busy while party 3 is away *)
      for wave = 0 to 3 do
        Cluster.at c ~time:(0.6 +. (0.5 *. float_of_int wave)) (fun () ->
          for p = 0 to 2 do
            send p (Printf.sprintf "p%d.w%d" p wave)
          done)
      done;
      Cluster.at c ~time:0.5 (fun () -> Runtime.crash rt3);
      Cluster.at c ~time:3.0 (fun () -> Runtime.recover rt3);
      Cluster.at c ~time:4.5 (fun () -> send 3 "p3.b");
      ignore (Cluster.run c ~until:300.0);
      Alcotest.(check int) "quiesced" 0 (Sim.Engine.pending c.Cluster.engine);
      let seqs = sequences logs in
      Alcotest.(check int) "all 17 payloads delivered" 17
        (List.length seqs.(0));
      Util.check_all_equal "order after rebuild" (Array.to_list seqs));

  Alcotest.test_case "adaptive batching converges between its bounds" `Quick
    (fun () ->
      (* A sustained bursty backlog must push the adaptive cap above its
         floor; it must never leave [min 8 max_batch, max_batch]; and with
         adaptation off the cap stays pinned at max_batch. *)
      let run_with ~seed ~adaptive =
        let c =
          Util.cluster ~seed ~max_batch:256 ~adaptive_batch:adaptive ()
        in
        let chans, logs = make_atomic c "ad" in
        for wave = 0 to 7 do
          Cluster.at c ~time:(0.01 +. (0.25 *. float_of_int wave)) (fun () ->
            for i = 0 to 3 do
              Cluster.inject c i (fun () ->
                for k = 0 to 5 do
                  Atomic_channel.send chans.(i)
                    (Printf.sprintf "m%d.%d.%d" i wave k)
                done)
            done)
        done;
        let cap_hi = probe_max c ~until:15.0 (fun () ->
          Atomic_channel.batch_limit chans.(0))
        in
        ignore (Cluster.run c ~until:300.0);
        let seqs = sequences logs in
        Util.check_all_equal "total order" (Array.to_list seqs);
        Alcotest.(check int) "all 192 delivered" 192 (List.length seqs.(0));
        (!cap_hi, Atomic_channel.batch_limit chans.(0))
      in
      let hi, _final = run_with ~seed:"pipe-adapt" ~adaptive:true in
      Alcotest.(check bool)
        (Printf.sprintf "cap grew above the floor (max %d)" hi)
        true (hi > 8);
      Alcotest.(check bool)
        (Printf.sprintf "cap bounded by max_batch (max %d)" hi)
        true (hi <= 256);
      let hi_pinned, final_pinned =
        run_with ~seed:"pipe-pinned" ~adaptive:false
      in
      Alcotest.(check int) "pinned cap never moves (max)" 256 hi_pinned;
      Alcotest.(check int) "pinned cap never moves (final)" 256 final_pinned);
]
