(* Tests for the state-machine-replication service wrapper. *)

open Sintra

(* A tiny deterministic service: an accumulator with ADD/GET commands. *)
let apply (acc : int) (request : string) : int * string =
  match String.split_on_char ' ' request with
  | [ "add"; n ] ->
    (match int_of_string_opt n with
     | Some v -> (acc + v, Printf.sprintf "ok %d" (acc + v))
     | None -> (acc, "error"))
  | [ "get" ] -> (acc, string_of_int acc)
  | _ -> (acc, "error")

let make_replicas (c : Cluster.t) =
  Array.init (Cluster.n c) (fun i ->
    Service.create (Cluster.runtime c i) ~pid:"svc" ~init:0 ~apply)

let suite = [
  Alcotest.test_case "replicas converge to the same state" `Quick (fun () ->
    let c = Util.cluster ~seed:"svc1" () in
    let replicas = make_replicas c in
    Cluster.inject c 0 (fun () -> ignore (Service.submit replicas.(0) "add 5"));
    Cluster.inject c 1 (fun () -> ignore (Service.submit replicas.(1) "add 10"));
    Cluster.inject c 2 (fun () -> ignore (Service.submit replicas.(2) "add 100"));
    ignore (Cluster.run c);
    Array.iteri
      (fun i r ->
        Alcotest.(check int) (Printf.sprintf "replica %d state" i) 115 (Service.state r);
        Alcotest.(check int) "executed" 3 (Service.executed r))
      replicas;
    Util.check_all_equal "reply digests"
      (Array.to_list (Array.map Service.reply_digest replicas)));

  Alcotest.test_case "replies are recorded per request and match" `Quick (fun () ->
    let c = Util.cluster ~seed:"svc2" () in
    let replicas = make_replicas c in
    let tag = ref (-1) in
    Cluster.inject c 1 (fun () -> tag := Service.submit replicas.(1) "add 7");
    ignore (Cluster.run c);
    (* every replica computed the same reply for (origin=1, tag) *)
    let answers =
      List.map (fun i -> Service.reply replicas.(i) ~origin:1 ~tag:!tag) [ 0; 1; 2; 3 ]
    in
    Util.check_all_equal "replies" answers;
    Alcotest.(check (option string)) "value" (Some "ok 7") (List.hd answers));

  Alcotest.test_case "order dependence is resolved identically" `Quick (fun () ->
    (* 'add' then 'get': whatever order wins, all replicas agree on it. *)
    let c = Util.cluster ~seed:"svc3" () in
    let replicas = make_replicas c in
    Cluster.inject c 0 (fun () -> ignore (Service.submit replicas.(0) "add 1"));
    Cluster.inject c 3 (fun () -> ignore (Service.submit replicas.(3) "get"));
    ignore (Cluster.run c);
    Util.check_all_equal "digests"
      (Array.to_list (Array.map Service.reply_digest replicas));
    Array.iter (fun r -> Alcotest.(check int) "state" 1 (Service.state r)) replicas);

  Alcotest.test_case "tolerates a crashed replica" `Quick (fun () ->
    let c = Util.cluster ~seed:"svc4" () in
    let replicas = make_replicas c in
    Cluster.crash c 2;
    Cluster.inject c 0 (fun () -> ignore (Service.submit replicas.(0) "add 42"));
    ignore (Cluster.run c);
    List.iter
      (fun i -> Alcotest.(check int) "state" 42 (Service.state replicas.(i)))
      [ 0; 1; 3 ]);

  Alcotest.test_case "invalid commands produce deterministic errors" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"svc5" () in
      let replicas = make_replicas c in
      let tag = ref (-1) in
      Cluster.inject c 2 (fun () -> tag := Service.submit replicas.(2) "frobnicate 9");
      Cluster.inject c 0 (fun () -> ignore (Service.submit replicas.(0) "add 3"));
      ignore (Cluster.run c);
      (* the bad command executed everywhere with the same error reply and
         did not corrupt the state *)
      Array.iter
        (fun r ->
          Alcotest.(check (option string)) "error reply" (Some "error")
            (Service.reply r ~origin:2 ~tag:!tag);
          Alcotest.(check int) "state" 3 (Service.state r))
        replicas;
      Util.check_all_equal "digests"
        (Array.to_list (Array.map Service.reply_digest replicas)));
]
