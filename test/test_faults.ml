(* Fault-scenario tests using the reusable adversaries, including the
   classic partition-and-heal liveness check. *)

open Sintra

let suite = [
  Alcotest.test_case "2-2 partition stalls atomic broadcast, heals, resumes" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"part1" () in
      Faults.install c (Faults.partition c ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ~heal_at:5.0);
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"pt"
            ~on_deliver:(fun ~sender m ->
              logs.(i) := (Cluster.now c, sender, m) :: !(logs.(i)))
            ())
      in
      Cluster.inject c 0 (fun () -> Atomic_channel.send chans.(0) "split brain?");
      (* during the partition nothing can be delivered: no component has
         n-t = 3 members *)
      ignore (Cluster.run c ~until:4.9);
      Array.iteri
        (fun i log ->
          if !log <> [] then Alcotest.failf "party %d delivered during partition" i)
        logs;
      (* heal and run to quiescence *)
      ignore (Cluster.run c);
      let seqs = Array.map (fun l -> List.rev_map (fun (_, s, m) -> (s, m)) !l) logs in
      Util.check_all_equal "order after heal" (Array.to_list seqs);
      Array.iteri
        (fun i log ->
          match List.rev !log with
          | [ (time, 0, "split brain?") ] ->
            if time < 5.0 then Alcotest.failf "party %d delivered before heal" i
          | _ -> Alcotest.failf "party %d: unexpected deliveries" i)
        logs);

  Alcotest.test_case "3-1 partition: majority side keeps running" `Quick (fun () ->
    let c = Util.cluster ~seed:"part2" () in
    Faults.install c (Faults.partition c ~groups:[ [ 0; 1; 2 ]; [ 3 ] ] ~heal_at:30.0);
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Atomic_channel.create (Cluster.runtime c i) ~pid:"pt"
          ~on_deliver:(fun ~sender m ->
            logs.(i) := (Cluster.now c, sender, m) :: !(logs.(i)))
          ())
    in
    Cluster.inject c 0 (fun () -> Atomic_channel.send chans.(0) "majority");
    ignore (Cluster.run c ~until:25.0);
    (* the 3-member side (= n-t) must deliver before healing... *)
    List.iter
      (fun i ->
        match !(logs.(i)) with
        | [ (time, 0, "majority") ] ->
          if time >= 25.0 then Alcotest.failf "party %d too late" i
        | _ -> Alcotest.failf "party %d did not deliver" i)
      [ 0; 1; 2 ];
    (* ...and the isolated party catches up after the heal *)
    ignore (Cluster.run c);
    (match !(logs.(3)) with
     | [ (_, 0, "majority") ] -> ()
     | _ -> Alcotest.fail "isolated party did not catch up"));

  Alcotest.test_case "eclipsed party reads the same history late" `Quick (fun () ->
    let c = Util.cluster ~seed:"ecl" () in
    Faults.install c (Faults.eclipse 2 ~delay:6.0);
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Atomic_channel.create (Cluster.runtime c i) ~pid:"ec"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    for k = 0 to 2 do
      Cluster.inject c 1 (fun () -> Atomic_channel.send chans.(1) (Printf.sprintf "e%d" k))
    done;
    ignore (Cluster.run c);
    let seqs = Array.map (fun l -> List.rev !l) logs in
    Util.check_all_equal "identical including the eclipsed party"
      (Array.to_list seqs);
    Alcotest.(check int) "complete" 3 (List.length seqs.(2)));

  Alcotest.test_case "scheduler drops: whoever delivers, delivers consistently" `Quick
    (fun () ->
      (* drop_every models an adversarial scheduler discarding messages of a
         protocol that tolerates it: reliable broadcast has enough
         redundancy to deliver when only 1 in 10 messages vanish. *)
      let c = Util.cluster ~seed:"dr" () in
      Faults.install c (Faults.drop_every 10);
      let got = Array.make 4 None in
      let insts =
        Array.init 4 (fun i ->
          Reliable_broadcast.create (Cluster.runtime c i) ~pid:"dr" ~sender:0
            ~on_deliver:(fun m -> got.(i) <- Some m))
      in
      Cluster.inject c 0 (fun () -> Reliable_broadcast.send insts.(0) "redundant");
      ignore (Cluster.run c);
      (* With random drops Bracha's quorums may or may not complete for
         every party, but consistency must hold for all who delivered. *)
      let delivered = Array.to_list got |> List.filter_map (fun x -> x) in
      Util.check_all_equal "consistent" delivered);

  Alcotest.test_case "Byzantine double pre-vote is flagged, agreement survives" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"byz-dv" ~check_invariants:true () in
      let decisions = Array.make 4 None in
      let insts =
        Array.init 3 (fun i ->
          Binary_agreement.create (Cluster.runtime c i) ~pid:"byz"
            ~on_decide:(fun b _ -> decisions.(i) <- Some b))
      in
      (* Party 3 runs no honest instance: it broadcasts two conflicting,
         validly signed round-1 pre-votes — classic equivocation. *)
      let rt3 = Cluster.runtime c 3 in
      let forged_prevote (value : bool) : string =
        let stmt = Printf.sprintf "aba-pre|%s|%d|%b" "byz" 1 value in
        let share =
          Tsig.release ~drbg:rt3.Runtime.drbg rt3.Runtime.keys.Dealer.ag_tsig
            ~ctx:"byz" stmt
        in
        Wire.encode (fun b ->
          Wire.Enc.u8 b 0;                       (* tag_prevote *)
          Wire.Enc.int b 1;                      (* round *)
          Wire.Enc.bool b value;
          Tsig.enc_share b share;
          Wire.Enc.u8 b 0;                       (* J_initial *)
          Wire.Enc.option b Wire.Enc.bytes None  (* no validity proof *))
      in
      Array.iteri
        (fun i inst ->
          Cluster.inject c i (fun () -> Binary_agreement.propose inst true))
        insts;
      Cluster.inject c 3 (fun () ->
        Runtime.broadcast rt3 ~pid:"byz" (forged_prevote true);
        Runtime.broadcast rt3 ~pid:"byz" (forged_prevote false));
      ignore (Cluster.run c);
      (* The honest parties still agree... *)
      let decided = List.filter_map (fun i -> decisions.(i)) [ 0; 1; 2 ] in
      if List.length decided <> 3 then
        Alcotest.fail "an honest party failed to decide";
      Util.check_all_equal "honest agreement" decided;
      (* ...and every one of them recorded party 3 as an equivocator. *)
      List.iter
        (fun i ->
          let rt = Cluster.runtime c i in
          let flags = Invariant.flagged rt.Runtime.inv in
          if not (List.exists (fun (off, _) -> off = 3) flags) then
            Alcotest.failf "party %d did not flag the equivocator" i)
        [ 0; 1; 2 ]);

  Alcotest.test_case "invariant checker stays silent on a clean run" `Quick
    (fun () ->
      (* Atomic broadcast exercises the INIT pool, binary agreement, and
         consistent broadcast invariant hooks; any local violation would
         raise out of Cluster.run, and no party may be flagged. *)
      let c = Util.cluster ~seed:"clean-inv" ~check_invariants:true () in
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"ci"
            ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i)))
            ())
      in
      for k = 0 to 2 do
        Cluster.inject c (k mod 4) (fun () ->
          Atomic_channel.send chans.(k mod 4) (Printf.sprintf "m%d" k))
      done;
      ignore (Cluster.run c);
      let seqs = Array.map (fun l -> List.rev !l) logs in
      Util.check_all_equal "identical delivery" (Array.to_list seqs);
      Alcotest.(check int) "complete" 3 (List.length seqs.(0));
      Array.iteri
        (fun i _ ->
          let rt = Cluster.runtime c i in
          match Invariant.flagged rt.Runtime.inv with
          | [] -> ()
          | (off, what) :: _ ->
            Alcotest.failf "party %d flagged %d on a clean run: %s" i off what)
        chans);
]
