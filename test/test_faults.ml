(* Fault-scenario tests using the reusable adversaries, including the
   classic partition-and-heal liveness check. *)

open Sintra

let suite = [
  Alcotest.test_case "2-2 partition stalls atomic broadcast, heals, resumes" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"part1" () in
      Faults.install c (Faults.partition c ~groups:[ [ 0; 1 ]; [ 2; 3 ] ] ~heal_at:5.0);
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"pt"
            ~on_deliver:(fun ~sender m ->
              logs.(i) := (Cluster.now c, sender, m) :: !(logs.(i)))
            ())
      in
      Cluster.inject c 0 (fun () -> Atomic_channel.send chans.(0) "split brain?");
      (* during the partition nothing can be delivered: no component has
         n-t = 3 members *)
      ignore (Cluster.run c ~until:4.9);
      Array.iteri
        (fun i log ->
          if !log <> [] then Alcotest.failf "party %d delivered during partition" i)
        logs;
      (* heal and run to quiescence *)
      ignore (Cluster.run c);
      let seqs = Array.map (fun l -> List.rev_map (fun (_, s, m) -> (s, m)) !l) logs in
      Util.check_all_equal "order after heal" (Array.to_list seqs);
      Array.iteri
        (fun i log ->
          match List.rev !log with
          | [ (time, 0, "split brain?") ] ->
            if time < 5.0 then Alcotest.failf "party %d delivered before heal" i
          | _ -> Alcotest.failf "party %d: unexpected deliveries" i)
        logs);

  Alcotest.test_case "3-1 partition: majority side keeps running" `Quick (fun () ->
    let c = Util.cluster ~seed:"part2" () in
    Faults.install c (Faults.partition c ~groups:[ [ 0; 1; 2 ]; [ 3 ] ] ~heal_at:30.0);
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Atomic_channel.create (Cluster.runtime c i) ~pid:"pt"
          ~on_deliver:(fun ~sender m ->
            logs.(i) := (Cluster.now c, sender, m) :: !(logs.(i)))
          ())
    in
    Cluster.inject c 0 (fun () -> Atomic_channel.send chans.(0) "majority");
    ignore (Cluster.run c ~until:25.0);
    (* the 3-member side (= n-t) must deliver before healing... *)
    List.iter
      (fun i ->
        match !(logs.(i)) with
        | [ (time, 0, "majority") ] ->
          if time >= 25.0 then Alcotest.failf "party %d too late" i
        | _ -> Alcotest.failf "party %d did not deliver" i)
      [ 0; 1; 2 ];
    (* ...and the isolated party catches up after the heal *)
    ignore (Cluster.run c);
    (match !(logs.(3)) with
     | [ (_, 0, "majority") ] -> ()
     | _ -> Alcotest.fail "isolated party did not catch up"));

  Alcotest.test_case "eclipsed party reads the same history late" `Quick (fun () ->
    let c = Util.cluster ~seed:"ecl" () in
    Faults.install c (Faults.eclipse 2 ~delay:6.0);
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Atomic_channel.create (Cluster.runtime c i) ~pid:"ec"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    for k = 0 to 2 do
      Cluster.inject c 1 (fun () -> Atomic_channel.send chans.(1) (Printf.sprintf "e%d" k))
    done;
    ignore (Cluster.run c);
    let seqs = Array.map (fun l -> List.rev !l) logs in
    Util.check_all_equal "identical including the eclipsed party"
      (Array.to_list seqs);
    Alcotest.(check int) "complete" 3 (List.length seqs.(2)));

  Alcotest.test_case "scheduler drops: whoever delivers, delivers consistently" `Quick
    (fun () ->
      (* drop_every models an adversarial scheduler discarding messages of a
         protocol that tolerates it: reliable broadcast has enough
         redundancy to deliver when only 1 in 10 messages vanish. *)
      let c = Util.cluster ~seed:"dr" () in
      Faults.install c (Faults.drop_every 10);
      let got = Array.make 4 None in
      let insts =
        Array.init 4 (fun i ->
          Reliable_broadcast.create (Cluster.runtime c i) ~pid:"dr" ~sender:0
            ~on_deliver:(fun m -> got.(i) <- Some m))
      in
      Cluster.inject c 0 (fun () -> Reliable_broadcast.send insts.(0) "redundant");
      ignore (Cluster.run c);
      (* With random drops Bracha's quorums may or may not complete for
         every party, but consistency must hold for all who delivered. *)
      let delivered = Array.to_list got |> List.filter_map (fun x -> x) in
      Util.check_all_equal "consistent" delivered);
]
