(* Tests for the causal-DAG reconstruction and critical-path attribution
   (lib/trace causal): hand-crafted event streams with known attributions
   — linear chains, diamond dependencies, crypto-span nesting, clipping,
   concurrent rounds, orphaned edges — plus an integration run over a real
   cluster and byte-determinism of the latency-bench report. *)

open Sintra

let ev ?(party = 0) ?(pid = "ch") ?(cat = "net") ?(args = []) ~time ph name =
  Trace.Event.make ~args ~time ~party ~pid ~cat ~ph name

let iarg k v = (k, Trace.Event.Int v)
let farg k v = (k, Trace.Event.Float v)

(* The four records of one message's lifecycle: flow start at the sender,
   departure, arrival, dispatch (flow end, under the handler's pid). *)
let msg ~id ?(parent = -1) ~send ~xmit ~recv ~disp ?(pid = "ch") () :
    Trace.Event.t list =
  let id_args = [ iarg "id" id ] in
  let start_args =
    if parent >= 0 then id_args @ [ iarg "cause" parent ] else id_args
  in
  [
    ev ~time:send ~args:start_args Trace.Event.Flow_start "msg";
    ev ~time:xmit ~args:id_args Trace.Event.Instant "xmit";
    ev ~party:1 ~time:recv ~args:id_args Trace.Event.Instant "recv";
    ev ~party:1 ~pid ~time:disp ~args:id_args Trace.Event.Flow_end "msg";
  ]

let enqueue ?(party = 0) ~seq ~time () =
  ev ~party ~cat:"abc" ~time ~args:[ iarg "seq" seq ] Trace.Event.Instant
    "enqueue"

let deliver ?(party = 0) ~seq ~time ~cause () =
  ev ~party ~cat:"abc" ~time
    ~args:[ iarg "sender" party; iarg "seq" seq; iarg "cause" cause ]
    Trace.Event.Instant "deliver"

let the_payload (r : Trace.Causal.report) : Trace.Causal.payload =
  match r.Trace.Causal.r_payloads with
  | [ p ] -> p
  | l -> Alcotest.failf "expected exactly one payload, got %d" (List.length l)

let check_phase name expect actual =
  Alcotest.(check (float 1e-9)) name expect actual

let suite = [
  Alcotest.test_case "linear chain: phases tile the interval" `Quick (fun () ->
    let events =
      [ enqueue ~seq:0 ~time:0.0 () ]
      @ msg ~id:0 ~send:0.0 ~xmit:0.1 ~recv:0.3 ~disp:0.4 ()
      @ msg ~id:1 ~parent:0 ~send:0.4 ~xmit:0.6 ~recv:0.9 ~disp:1.0 ()
      @ [ deliver ~seq:0 ~time:1.0 ~cause:1 () ]
    in
    Alcotest.(check (list string)) "well-formed" []
      (Trace.Causal.validate events);
    let r = Trace.Causal.analyze events in
    Alcotest.(check int) "messages" 2 r.Trace.Causal.r_messages;
    let p = the_payload r in
    Alcotest.(check int) "hops" 2 p.Trace.Causal.p_hops;
    let ph = p.Trace.Causal.p_phases in
    check_phase "pending" 0.0 ph.Trace.Causal.ph_pending;
    check_phase "compute" 0.3 ph.Trace.Causal.ph_compute;
    check_phase "transit" 0.5 ph.Trace.Causal.ph_transit;
    check_phase "queue" 0.2 ph.Trace.Causal.ph_queue;
    check_phase "crypto" 0.0 ph.Trace.Causal.ph_crypto;
    check_phase "unattributed" 0.0 p.Trace.Causal.p_unattributed;
    check_phase "coverage" 1.0 p.Trace.Causal.p_coverage;
    check_phase "min coverage" 1.0 (Trace.Causal.min_coverage r));

  Alcotest.test_case "diamond: only the trigger's chain is walked" `Quick
    (fun () ->
      (* A load-submit root fans out to two messages; the delivery's
         trigger descends from the slower branch.  The fast branch (id 1)
         must not contribute. *)
      let root =
        ev ~cat:"load" ~pid:"load" ~time:0.0 ~args:[ iarg "id" 0 ]
          Trace.Event.Instant "submit"
      in
      let events =
        [ root; enqueue ~seq:0 ~time:0.0 () ]
        @ msg ~id:1 ~parent:0 ~send:0.0 ~xmit:0.02 ~recv:0.04 ~disp:0.05 ()
        @ msg ~id:2 ~parent:0 ~send:0.0 ~xmit:0.1 ~recv:0.2 ~disp:0.3 ()
        @ msg ~id:3 ~parent:2 ~send:0.3 ~xmit:0.35 ~recv:0.45 ~disp:0.5 ()
        @ [ deliver ~seq:0 ~time:0.5 ~cause:3 () ]
      in
      Alcotest.(check (list string)) "well-formed" []
        (Trace.Causal.validate events);
      let r = Trace.Causal.analyze events in
      let p = the_payload r in
      Alcotest.(check int) "two hops (ids 3 and 2, not 1)" 2
        p.Trace.Causal.p_hops;
      let ph = p.Trace.Causal.p_phases in
      check_phase "compute" 0.15 ph.Trace.Causal.ph_compute;
      check_phase "transit" 0.2 ph.Trace.Causal.ph_transit;
      check_phase "queue" 0.15 ph.Trace.Causal.ph_queue;
      check_phase "coverage" 1.0 p.Trace.Causal.p_coverage);

  Alcotest.test_case "crypto: outermost spans only, clipped to the CPU window"
    `Quick (fun () ->
      (* msg 0's handler charges a 50 ms crypto span with a 30 ms span
         nested inside (tsig verify nesting per-share RSA checks); only
         the outer 50 ms may count against msg 1's 100 ms CPU window. *)
      let crypto t ms =
        [
          ev ~party:1 ~cat:"crypto" ~time:t Trace.Event.Span_begin "outer";
          ev ~party:1 ~cat:"crypto" ~time:t Trace.Event.Span_begin "inner";
          ev ~party:1 ~cat:"crypto" ~time:t
            ~args:[ farg "ms" 30.0; iarg "cause" 0 ]
            Trace.Event.Span_end "inner";
          ev ~party:1 ~cat:"crypto" ~time:t
            ~args:[ farg "ms" ms; iarg "cause" 0 ]
            Trace.Event.Span_end "outer";
        ]
      in
      let events =
        [ enqueue ~seq:0 ~time:0.0 () ]
        @ msg ~id:0 ~send:0.0 ~xmit:0.05 ~recv:0.1 ~disp:0.2 ()
        @ crypto 0.2 50.0
        @ msg ~id:1 ~parent:0 ~send:0.2 ~xmit:0.3 ~recv:0.4 ~disp:0.45 ()
        @ [ deliver ~seq:0 ~time:0.45 ~cause:1 () ]
      in
      let r = Trace.Causal.analyze events in
      let p = the_payload r in
      let ph = p.Trace.Causal.p_phases in
      check_phase "crypto = outer span only" 0.05 ph.Trace.Causal.ph_crypto;
      check_phase "compute = windows minus crypto" 0.1
        ph.Trace.Causal.ph_compute;
      check_phase "transit" 0.15 ph.Trace.Causal.ph_transit;
      check_phase "queue" 0.15 ph.Trace.Causal.ph_queue;
      check_phase "coverage" 1.0 p.Trace.Causal.p_coverage);

  Alcotest.test_case "pending: batch wait before the chain's first send"
    `Quick (fun () ->
      let events =
        [ enqueue ~seq:0 ~time:0.0 () ]
        @ msg ~id:0 ~send:0.2 ~xmit:0.3 ~recv:0.4 ~disp:0.5 ()
        @ [ deliver ~seq:0 ~time:0.5 ~cause:0 () ]
      in
      let r = Trace.Causal.analyze events in
      let p = the_payload r in
      let ph = p.Trace.Causal.p_phases in
      Alcotest.(check int) "hops" 1 p.Trace.Causal.p_hops;
      check_phase "pending" 0.2 ph.Trace.Causal.ph_pending;
      check_phase "compute" 0.1 ph.Trace.Causal.ph_compute;
      check_phase "transit" 0.1 ph.Trace.Causal.ph_transit;
      check_phase "queue" 0.1 ph.Trace.Causal.ph_queue;
      check_phase "coverage" 1.0 p.Trace.Causal.p_coverage);

  Alcotest.test_case "concurrent rounds: payloads attributed independently"
    `Quick (fun () ->
      let events =
        [ enqueue ~seq:0 ~time:0.0 (); enqueue ~seq:1 ~time:0.1 () ]
        @ msg ~id:0 ~send:0.0 ~xmit:0.1 ~recv:0.2 ~disp:0.3 ()
        @ msg ~id:1 ~send:0.1 ~xmit:0.15 ~recv:0.35 ~disp:0.4 ()
        @ [
            deliver ~seq:0 ~time:0.3 ~cause:0 ();
            deliver ~seq:1 ~time:0.4 ~cause:1 ();
          ]
      in
      let r = Trace.Causal.analyze events in
      match r.Trace.Causal.r_payloads with
      | [ a; b ] ->
        check_phase "payload 0 total" 0.3 a.Trace.Causal.p_total;
        check_phase "payload 0 coverage" 1.0 a.Trace.Causal.p_coverage;
        check_phase "payload 1 total" 0.3 b.Trace.Causal.p_total;
        check_phase "payload 1 transit" 0.2
          b.Trace.Causal.p_phases.Trace.Causal.ph_transit;
        check_phase "payload 1 coverage" 1.0 b.Trace.Causal.p_coverage;
        check_phase "report coverage" 1.0 r.Trace.Causal.r_coverage
      | l -> Alcotest.failf "expected 2 payloads, got %d" (List.length l));

  Alcotest.test_case "orphaned trigger: explicit zero coverage, no crash"
    `Quick (fun () ->
      let events =
        [
          enqueue ~seq:0 ~time:0.0 ();
          deliver ~seq:0 ~time:0.5 ~cause:(-1) ();
        ]
      in
      let r = Trace.Causal.analyze events in
      let p = the_payload r in
      Alcotest.(check int) "no hops" 0 p.Trace.Causal.p_hops;
      check_phase "all unattributed" 0.5 p.Trace.Causal.p_unattributed;
      check_phase "zero coverage" 0.0 p.Trace.Causal.p_coverage;
      check_phase "min coverage" 0.0 (Trace.Causal.min_coverage r));

  Alcotest.test_case "validate: orphaned edges, cycles and time inversions"
    `Quick (fun () ->
      let has_err (errs : string list) (needle : string) : bool =
        List.exists
          (fun e ->
            let nl = String.length needle and el = String.length e in
            let rec scan i =
              i + nl <= el && (String.sub e i nl = needle || scan (i + 1))
            in
            scan 0)
          errs
      in
      (* cause 7 is never emitted, and 7 >= 1 is a non-monotone edge *)
      let orphan =
        ev ~time:0.0 ~args:[ iarg "id" 1; iarg "cause" 7 ]
          Trace.Event.Flow_start "msg"
      in
      let errs = Trace.Causal.validate [ orphan ] in
      Alcotest.(check bool) "unknown cause reported" true
        (has_err errs "unknown cause 7");
      Alcotest.(check bool) "non-monotone edge reported" true
        (has_err errs "non-monotone");
      (* the same flow id emitted twice *)
      let dup =
        [
          ev ~time:0.0 ~args:[ iarg "id" 2 ] Trace.Event.Flow_start "msg";
          ev ~time:0.1 ~args:[ iarg "id" 2 ] Trace.Event.Flow_start "msg";
        ]
      in
      Alcotest.(check bool) "duplicate id reported" true
        (has_err (Trace.Causal.validate dup) "duplicate flow id 2");
      (* an arrival for an id that was never sent *)
      let ghost =
        [ ev ~time:0.0 ~args:[ iarg "id" 9 ] Trace.Event.Instant "recv" ]
      in
      Alcotest.(check bool) "ghost recv reported" true
        (has_err (Trace.Causal.validate ghost) "recv for unknown id 9");
      (* a message that departs before it is sent *)
      let inverted =
        [
          ev ~time:1.0 ~args:[ iarg "id" 3 ] Trace.Event.Flow_start "msg";
          ev ~time:0.5 ~args:[ iarg "id" 3 ] Trace.Event.Instant "xmit";
        ]
      in
      Alcotest.(check bool) "time inversion reported" true
        (has_err (Trace.Causal.validate inverted) "departs before send");
      (* a child sent while its parent was still in flight *)
      let early_child =
        msg ~id:0 ~send:0.0 ~xmit:0.2 ~recv:0.8 ~disp:1.0 ()
        @ [
            ev ~time:0.5 ~args:[ iarg "id" 4; iarg "cause" 0 ]
              Trace.Event.Flow_start "msg";
          ]
      in
      Alcotest.(check bool) "pre-dispatch child reported" true
        (has_err
           (Trace.Causal.validate early_child)
           "sent before its parent 0 was dispatched"));

  Alcotest.test_case "integration: a real run attributes >= 95%" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"causal-int" () in
      let events = ref [] in
      Cluster.set_sink c (Trace.Sink.Fn (fun e -> events := e :: !events));
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"ci"
            ~on_deliver:(fun ~sender:_ _ -> ignore i) ())
      in
      for k = 0 to 2 do
        Cluster.inject c 0 (fun () ->
          Atomic_channel.send chans.(0) (Printf.sprintf "m%d" k));
        Cluster.inject c 1 (fun () ->
          Atomic_channel.send chans.(1) (Printf.sprintf "n%d" k))
      done;
      ignore (Cluster.run c);
      let events = List.rev !events in
      Alcotest.(check (list string)) "causally well-formed" []
        (Trace.Causal.validate events);
      let r = Trace.Causal.analyze events in
      Alcotest.(check bool) "messages reconstructed" true
        (r.Trace.Causal.r_messages > 20);
      Alcotest.(check int) "all six payloads attributed" 6
        (List.length r.Trace.Causal.r_payloads);
      Alcotest.(check int) "no unmatched deliveries" 0
        r.Trace.Causal.r_unmatched;
      Alcotest.(check bool)
        (Printf.sprintf "worst coverage %.3f >= 0.95"
           (Trace.Causal.min_coverage r))
        true
        (Trace.Causal.min_coverage r >= 0.95));

  Alcotest.test_case "bench-latency: same seed, byte-identical report" `Slow
    (fun () ->
      let run () =
        Load.Latency.to_json
          (Load.Latency.run ~smoke:true ~rates:[ 15.0 ] ~seed:"det" ())
      in
      let a = run () in
      let b = run () in
      Alcotest.(check bool) "nonempty" true (String.length a > 0);
      Alcotest.(check string) "byte-identical" a b;
      let c =
        Load.Latency.to_json
          (Load.Latency.run ~smoke:true ~rates:[ 15.0 ] ~seed:"other" ())
      in
      Alcotest.(check bool) "seed-sensitive" true (a <> c));
]
