(* Unit and property tests for the bignum substrate. *)

open Bignum

let nat = Alcotest.testable Nat.pp Nat.equal
let bigint = Alcotest.testable Bigint.pp Bigint.equal

(* Generator for naturals up to ~512 bits, with small values well covered. *)
let gen_nat : Nat.t QCheck.arbitrary =
  let gen =
    QCheck.Gen.(
      oneof [
        map Nat.of_int (int_bound 1000);
        map
          (fun (bits, seed) ->
            let drbg = Hashes.Drbg.create ~seed:(string_of_int seed) in
            Nat.random_bits ~random_bytes:(Hashes.Drbg.random_bytes drbg) (1 + bits))
          (pair (int_bound 511) int);
      ])
  in
  QCheck.make ~print:Nat.to_string gen

let gen_pos_nat : Nat.t QCheck.arbitrary =
  QCheck.map ~rev:(fun n -> n) (fun n -> Nat.add n Nat.one) gen_nat

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let unit_tests = [
  Alcotest.test_case "zero and one" `Quick (fun () ->
    Alcotest.check nat "0" Nat.zero (Nat.of_int 0);
    Alcotest.check nat "1" Nat.one (Nat.of_int 1);
    Alcotest.(check bool) "is_zero" true (Nat.is_zero Nat.zero);
    Alcotest.(check bool) "one not zero" false (Nat.is_zero Nat.one));

  Alcotest.test_case "of_int/to_int roundtrip" `Quick (fun () ->
    List.iter
      (fun x ->
        Alcotest.(check (option int)) (string_of_int x) (Some x)
          (Nat.to_int_opt (Nat.of_int x)))
      [ 0; 1; 2; 12345; max_int / 4; (1 lsl 31) - 1; 1 lsl 31; (1 lsl 62) - 1; max_int ]);

  Alcotest.test_case "of_int rejects negatives" `Quick (fun () ->
    Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
      (fun () -> ignore (Nat.of_int (-1))));

  Alcotest.test_case "known product" `Quick (fun () ->
    let a = Nat.of_string "123456789012345678901234567890123456789" in
    let b = Nat.of_string "987654321098765432109876543210" in
    Alcotest.check nat "product"
      (Nat.of_string "121932631137021795226185032733744855963362292333223746380111126352690")
      (Nat.mul a b));

  Alcotest.test_case "known powmod" `Quick (fun () ->
    (* cross-checked against an independent implementation *)
    let m = Nat.of_string "1000000000000000000000000000057" in
    let e = Nat.of_string "100000000000000000007" in
    Alcotest.check nat "3^e mod m"
      (Nat.of_string "833722544651502183370455795997")
      (Nat.powmod (Nat.of_int 3) e m));

  Alcotest.test_case "sub underflow raises" `Quick (fun () ->
    Alcotest.check_raises "underflow" (Invalid_argument "Nat.sub: underflow")
      (fun () -> ignore (Nat.sub Nat.one Nat.two)));

  Alcotest.test_case "division by zero raises" `Quick (fun () ->
    Alcotest.check_raises "div0" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero)));

  Alcotest.test_case "decimal corner cases" `Quick (fun () ->
    Alcotest.(check string) "zero" "0" (Nat.to_string Nat.zero);
    Alcotest.(check string) "chunk boundary" "1000000000"
      (Nat.to_string (Nat.of_string "1000000000"));
    Alcotest.(check string) "interior zeros" "1000000000000000001"
      (Nat.to_string (Nat.of_string "1000000000000000001")));

  Alcotest.test_case "hex corner cases" `Quick (fun () ->
    Alcotest.(check string) "zero" "0" (Nat.to_hex Nat.zero);
    Alcotest.check nat "upper/lower" (Nat.of_hex "DEADBEEF") (Nat.of_hex "deadbeef");
    Alcotest.check nat "value" (Nat.of_int 0xdeadbeef) (Nat.of_hex "deadbeef"));

  Alcotest.test_case "to_bytes_be padding" `Quick (fun () ->
    Alcotest.(check string) "padded" "\x00\x00\x01\x02"
      (Nat.to_bytes_be ~len:4 (Nat.of_int 0x0102));
    Alcotest.check_raises "too small"
      (Invalid_argument "Nat.to_bytes_be: value too large for len") (fun () ->
        ignore (Nat.to_bytes_be ~len:1 (Nat.of_int 0x0102))));

  Alcotest.test_case "numbits / testbit" `Quick (fun () ->
    Alcotest.(check int) "0 bits" 0 (Nat.numbits Nat.zero);
    Alcotest.(check int) "1" 1 (Nat.numbits Nat.one);
    Alcotest.(check int) "255" 8 (Nat.numbits (Nat.of_int 255));
    Alcotest.(check int) "256" 9 (Nat.numbits (Nat.of_int 256));
    let v = Nat.shift_left Nat.one 100 in
    Alcotest.(check int) "2^100" 101 (Nat.numbits v);
    Alcotest.(check bool) "bit 100" true (Nat.testbit v 100);
    Alcotest.(check bool) "bit 99" false (Nat.testbit v 99));

  Alcotest.test_case "bigint signs" `Quick (fun () ->
    let a = Bigint.of_int (-7) and b = Bigint.of_int 3 in
    Alcotest.check bigint "add" (Bigint.of_int (-4)) (Bigint.add a b);
    Alcotest.check bigint "mul" (Bigint.of_int (-21)) (Bigint.mul a b);
    Alcotest.check bigint "erem" (Bigint.of_int 2) (Bigint.erem a b);
    Alcotest.(check string) "to_string" "-7" (Bigint.to_string a);
    Alcotest.check bigint "of_string" a (Bigint.of_string "-7"));

  Alcotest.test_case "invmod" `Quick (fun () ->
    let m = Bigint.of_int 97 in
    let inv = Bigint.invmod (Bigint.of_int 35) m in
    Alcotest.check bigint "35 * inv = 1" Bigint.one
      (Bigint.erem (Bigint.mul (Bigint.of_int 35) inv) m);
    Alcotest.check_raises "no inverse" Not_found (fun () ->
      ignore (Bigint.invmod (Bigint.of_int 6) (Bigint.of_int 9))));

  Alcotest.test_case "jacobi known values" `Quick (fun () ->
    (* (1001/9907) = -1 is the worked example in HAC *)
    Alcotest.(check int) "HAC example" (-1)
      (Bigint.jacobi (Bigint.of_int 1001) (Bigint.of_int 9907));
    Alcotest.(check int) "square" 1
      (Bigint.jacobi (Bigint.of_int 4) (Bigint.of_int 7));
    Alcotest.(check int) "divides" 0
      (Bigint.jacobi (Bigint.of_int 21) (Bigint.of_int 7)));

  Alcotest.test_case "primality of known values" `Quick (fun () ->
    let rb = Util.random_bytes () in
    let prime s = Prime.is_probable_prime ~random_bytes:rb (Nat.of_string s) in
    Alcotest.(check bool) "2" true (prime "2");
    Alcotest.(check bool) "3" true (prime "3");
    Alcotest.(check bool) "4" false (prime "4");
    Alcotest.(check bool) "1" false (prime "1");
    Alcotest.(check bool) "2^31-1" true (prime "2147483647");
    Alcotest.(check bool) "carmichael 561" false (prime "561");
    Alcotest.(check bool) "carmichael 41041" false (prime "41041");
    Alcotest.(check bool) "10^18+9" true (prime "1000000000000000009");
    Alcotest.(check bool) "10^18+11" false (prime "1000000000000000011"));

  Alcotest.test_case "prime generation" `Quick (fun () ->
    let rb = Util.random_bytes ~seed:"gen-prime" () in
    let p = Prime.gen_prime ~random_bytes:rb 128 in
    Alcotest.(check int) "exact size" 128 (Nat.numbits p);
    Alcotest.(check bool) "prime" true (Prime.is_probable_prime ~random_bytes:rb p));

  Alcotest.test_case "safe prime generation" `Quick (fun () ->
    let rb = Util.random_bytes ~seed:"gen-safe" () in
    let p = Prime.gen_safe_prime ~random_bytes:rb 96 in
    let q = Nat.shift_right (Nat.sub p Nat.one) 1 in
    Alcotest.(check bool) "p prime" true (Prime.is_probable_prime ~random_bytes:rb p);
    Alcotest.(check bool) "(p-1)/2 prime" true (Prime.is_probable_prime ~random_bytes:rb q));

  Alcotest.test_case "schnorr group generation" `Quick (fun () ->
    let rb = Util.random_bytes ~seed:"gen-schnorr" () in
    let p, q, g = Prime.gen_schnorr_group ~random_bytes:rb ~pbits:256 ~qbits:80 () in
    Alcotest.(check int) "p size" 256 (Nat.numbits p);
    Alcotest.(check int) "q size" 80 (Nat.numbits q);
    Alcotest.check nat "q | p-1" Nat.zero (Nat.rem (Nat.sub p Nat.one) q);
    Alcotest.check nat "g^q = 1" Nat.one (Nat.powmod g q p);
    Alcotest.(check bool) "g <> 1" false (Nat.equal g Nat.one));
]

let property_tests = [
  qtest "add commutes" (QCheck.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a));

  qtest "add associates" (QCheck.triple gen_nat gen_nat gen_nat)
    (fun (a, b, c) ->
      Nat.equal (Nat.add a (Nat.add b c)) (Nat.add (Nat.add a b) c));

  qtest "mul commutes" (QCheck.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a));

  qtest "mul distributes over add" (QCheck.triple gen_nat gen_nat gen_nat)
    (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));

  qtest "sub inverts add" (QCheck.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.sub (Nat.add a b) b) a);

  qtest "divmod invariant" (QCheck.pair gen_nat gen_pos_nat)
    (fun (a, b) ->
      let q, r = Nat.divmod a b in
      Nat.compare r b < 0 && Nat.equal (Nat.add (Nat.mul q b) r) a);

  qtest "shift roundtrip" (QCheck.pair gen_nat (QCheck.int_bound 200))
    (fun (a, k) -> Nat.equal (Nat.shift_right (Nat.shift_left a k) k) a);

  qtest "shift_left is mul by 2^k" (QCheck.pair gen_nat (QCheck.int_bound 100))
    (fun (a, k) ->
      Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.shift_left Nat.one k)));

  qtest "square consistent with mul" gen_nat
    (fun a -> Nat.equal (Nat.sqr a) (Nat.mul a a));

  qtest "karatsuba agrees with wide operands" (QCheck.pair (QCheck.int_bound 10000) (QCheck.int_bound 10000))
    (fun (x, y) ->
      (* Build ~1200-bit operands so the Karatsuba path runs. *)
      let big v = Nat.add (Nat.shift_left (Nat.of_int (v + 1)) 1200) (Nat.of_int v) in
      let a = big x and b = big y in
      let q, r = Nat.divmod (Nat.mul a b) b in
      Nat.equal q a && Nat.is_zero r);

  qtest "bytes roundtrip" gen_nat
    (fun a -> Nat.equal (Nat.of_bytes_be (Nat.to_bytes_be a)) a);

  qtest "hex roundtrip" gen_nat
    (fun a -> Nat.equal (Nat.of_hex (Nat.to_hex a)) a);

  qtest "decimal roundtrip" gen_nat
    (fun a -> Nat.equal (Nat.of_string (Nat.to_string a)) a);

  qtest ~count:200 "barrett reduce agrees with rem" (QCheck.pair gen_nat gen_pos_nat)
    (fun (x, m) ->
      let ctx = Nat.Barrett.create m in
      Nat.equal (Nat.Barrett.reduce ctx x) (Nat.rem x m));

  qtest ~count:100 "barrett at product range" (QCheck.pair gen_nat gen_pos_nat)
    (fun (a, m) ->
      (* the hot case: reducing a product of two residues *)
      let a = Nat.rem a m in
      let x = Nat.sqr a in
      let ctx = Nat.Barrett.create m in
      Nat.equal (Nat.Barrett.reduce ctx x) (Nat.rem x m));

  qtest ~count:50 "powmod multiplicativity" (QCheck.pair gen_nat gen_pos_nat)
    (fun (a, m) ->
      let m = Nat.add m Nat.one in  (* >= 2 *)
      let e1 = Nat.of_int 13 and e2 = Nat.of_int 29 in
      (* a^13 * a^29 = a^42 mod m *)
      Nat.equal
        (Nat.rem (Nat.mul (Nat.powmod a e1 m) (Nat.powmod a e2 m)) m)
        (Nat.powmod a (Nat.add e1 e2) m));

  qtest ~count:100 "egcd bezout identity" (QCheck.pair gen_nat gen_pos_nat)
    (fun (a, b) ->
      let a = Bigint.of_nat a and b = Bigint.of_nat b in
      let g, x, y = Bigint.egcd a b in
      Bigint.equal (Bigint.add (Bigint.mul a x) (Bigint.mul b y)) g);

  qtest ~count:100 "invmod correct when gcd 1" (QCheck.pair gen_nat gen_pos_nat)
    (fun (a, m) ->
      let m = Bigint.add (Bigint.of_nat m) Bigint.two in
      let a = Bigint.of_nat a in
      match Bigint.invmod a m with
      | inv -> Bigint.equal (Bigint.erem (Bigint.mul a inv) m) Bigint.one
      | exception Not_found ->
        not (Bigint.equal (Bigint.gcd a m) Bigint.one));

  qtest ~count:100 "erem in range and consistent" (QCheck.pair gen_nat gen_pos_nat)
    (fun (a, m) ->
      let m = Bigint.of_nat m in
      let a = Bigint.neg (Bigint.of_nat a) in   (* exercise negatives *)
      let r = Bigint.erem a m in
      (not (Bigint.is_neg r))
      && Bigint.compare r m < 0
      && Bigint.equal (Bigint.add (Bigint.mul m (Bigint.ediv a m)) r) a);

  qtest ~count:50 "random_below stays below" gen_pos_nat
    (fun bound ->
      let rb = Util.random_bytes ~seed:(Nat.to_string bound) () in
      let v = Nat.random_below ~random_bytes:rb bound in
      Nat.compare v bound < 0);

  qtest ~count:40 "jacobi multiplicative in numerator"
    (QCheck.triple (QCheck.int_bound 2000) (QCheck.int_bound 2000) (QCheck.int_bound 500))
    (fun (a, b, m) ->
      let n = Bigint.of_int ((2 * m) + 3) in  (* odd >= 3 *)
      let ja = Bigint.jacobi (Bigint.of_int a) n in
      let jb = Bigint.jacobi (Bigint.of_int b) n in
      let jab = Bigint.jacobi (Bigint.of_int (a * b)) n in
      jab = ja * jb);
]

(* Fast-path equivalence: the Montgomery, multi-exponentiation and
   fixed-base paths must agree with the plain Barrett [powmod] on every
   input shape, including the edge cases each path special-cases. *)
let fastpath_tests = [
  Alcotest.test_case "powmod edge cases (both parities)" `Quick (fun () ->
    let n = Nat.of_int in
    List.iter
      (fun m ->
        let m = n m in
        (* zero exponent *)
        Alcotest.check nat "b^0 = 1" Nat.one (Nat.powmod (n 5) Nat.zero m);
        (* one exponent *)
        Alcotest.check nat "b^1 = b mod m" (Nat.rem (n 123456789) m)
          (Nat.powmod (n 123456789) Nat.one m);
        (* base >= modulus *)
        Alcotest.check nat "base >= m"
          (Nat.powmod_barrett (n 1_000_003) (n 77) m)
          (Nat.powmod (n 1_000_003) (n 77) m);
        (* zero base *)
        Alcotest.check nat "0^e = 0" Nat.zero (Nat.powmod Nat.zero (n 9) m))
      [ 97; 98; 65537; 65536 ];
    (* modulus one collapses everything *)
    Alcotest.check nat "mod 1" Nat.zero (Nat.powmod (n 5) (n 3) Nat.one);
    Alcotest.check nat "b^0 mod 1" Nat.zero (Nat.powmod (n 5) Nat.zero Nat.one);
    Alcotest.check_raises "mod 0" Division_by_zero (fun () ->
      ignore (Nat.powmod (n 5) (n 3) Nat.zero)));

  Alcotest.test_case "even modulus takes the Barrett fallback" `Quick (fun () ->
    let rb = Util.random_bytes ~seed:"even-mod" () in
    for _ = 1 to 50 do
      let m = Nat.shift_left (Nat.add (Nat.random_bits ~random_bytes:rb 120) Nat.one) 1 in
      let b = Nat.random_bits ~random_bytes:rb 140 in
      let e = Nat.random_bits ~random_bytes:rb 90 in
      Alcotest.check nat "even m" (Nat.powmod_barrett b e m) (Nat.powmod b e m)
    done);

  Alcotest.test_case "Montgomery rejects even modulus" `Quick (fun () ->
    Alcotest.check_raises "even" (Invalid_argument "Nat.Montgomery.create: even modulus")
      (fun () -> ignore (Nat.Montgomery.create (Nat.of_int 100))));

  Alcotest.test_case "Montgomery roundtrip and products" `Quick (fun () ->
    let rb = Util.random_bytes ~seed:"mont-mul" () in
    for _ = 1 to 100 do
      let m = Nat.add (Nat.shift_left (Nat.random_bits ~random_bytes:rb 200) 1) Nat.one in
      let ctx = Nat.Montgomery.create m in
      let a = Nat.rem (Nat.random_bits ~random_bytes:rb 220) m in
      let b = Nat.rem (Nat.random_bits ~random_bytes:rb 220) m in
      let am = Nat.Montgomery.to_mont ctx a in
      Alcotest.check nat "roundtrip" a (Nat.Montgomery.of_mont ctx am);
      let bm = Nat.Montgomery.to_mont ctx b in
      Alcotest.check nat "product"
        (Nat.rem (Nat.mul a b) m)
        (Nat.Montgomery.of_mont ctx (Nat.Montgomery.mul ctx am bm));
      Alcotest.check nat "square"
        (Nat.rem (Nat.sqr a) m)
        (Nat.Montgomery.of_mont ctx (Nat.Montgomery.sqr ctx am))
    done);

  Alcotest.test_case "powmod2 edge cases" `Quick (fun () ->
    let n = Nat.of_int in
    let m = n 1009 in
    Alcotest.check nat "both exps zero" Nat.one
      (Nat.powmod2 (n 3) Nat.zero (n 4) Nat.zero m);
    Alcotest.check nat "left exp zero" (Nat.powmod (n 4) (n 9) m)
      (Nat.powmod2 (n 3) Nat.zero (n 4) (n 9) m);
    Alcotest.check nat "right exp zero" (Nat.powmod (n 3) (n 9) m)
      (Nat.powmod2 (n 3) (n 9) (n 4) Nat.zero m);
    Alcotest.check nat "mod 1" Nat.zero (Nat.powmod2 (n 3) (n 5) (n 4) (n 7) Nat.one);
    Alcotest.check_raises "mod 0" Division_by_zero (fun () ->
      ignore (Nat.powmod2 (n 3) (n 5) (n 4) (n 7) Nat.zero));
    (* bases >= modulus *)
    Alcotest.check nat "bases above m"
      (Nat.rem (Nat.mul (Nat.powmod (n 5000) (n 11) m) (Nat.powmod (n 7000) (n 13) m)) m)
      (Nat.powmod2 (n 5000) (n 11) (n 7000) (n 13) m));

  Alcotest.test_case "powmod2 with differing exponent widths" `Quick (fun () ->
    let rb = Util.random_bytes ~seed:"powmod2-widths" () in
    List.iter
      (fun (bits1, bits2) ->
        let m = Nat.add (Nat.shift_left (Nat.random_bits ~random_bytes:rb 180) 1) Nat.one in
        let b1 = Nat.random_bits ~random_bytes:rb 200 in
        let b2 = Nat.random_bits ~random_bytes:rb 200 in
        let e1 = Nat.random_bits ~random_bytes:rb bits1 in
        let e2 = Nat.random_bits ~random_bytes:rb bits2 in
        let expect =
          Nat.rem (Nat.mul (Nat.powmod_barrett b1 e1 m) (Nat.powmod_barrett b2 e2 m)) m
        in
        Alcotest.check nat
          (Printf.sprintf "%d-bit vs %d-bit exponents" bits1 bits2)
          expect (Nat.powmod2 b1 e1 b2 e2 m))
      [ (1, 300); (300, 1); (7, 160); (160, 7); (64, 65); (256, 256); (2, 2) ]);

  Alcotest.test_case "fixed-base table edge cases" `Quick (fun () ->
    let n = Nat.of_int in
    let tbl = Nat.Fixed_base.create ~base:(n 5) ~modulus:(n 1009) ~max_bits:64 in
    Alcotest.(check int) "max_bits" 64 (Nat.Fixed_base.max_bits tbl);
    Alcotest.check nat "e = 0" Nat.one (Nat.Fixed_base.pow tbl Nat.zero);
    Alcotest.check nat "e = 1" (n 5) (Nat.Fixed_base.pow tbl Nat.one);
    (* oversized exponent falls back to powmod *)
    let big_e = Nat.shift_left Nat.one 100 in
    Alcotest.check nat "oversized exponent"
      (Nat.powmod (n 5) big_e (n 1009)) (Nat.Fixed_base.pow tbl big_e);
    Alcotest.check_raises "max_bits 0"
      (Invalid_argument "Nat.Fixed_base.create: max_bits must be positive")
      (fun () -> ignore (Nat.Fixed_base.create ~base:(n 5) ~modulus:(n 7) ~max_bits:0));
    (* base >= modulus and even modulus *)
    let tbl2 = Nat.Fixed_base.create ~base:(n 5000) ~modulus:(n 1024) ~max_bits:32 in
    Alcotest.check nat "even modulus, big base"
      (Nat.powmod_barrett (n 5000) (n 123456) (n 1024))
      (Nat.Fixed_base.pow tbl2 (n 123456)));

  Alcotest.test_case "randomized cross-check: all fast paths vs plain powmod" `Quick
    (fun () ->
      (* A few hundred DRBG-seeded cases over mixed sizes and parities:
         Montgomery powmod, powmod2 and fixed-base tables must all agree
         with the Barrett reference. *)
      let rb = Util.random_bytes ~seed:"fastpath-crosscheck" () in
      let rand_int n =
        1 + (Char.code (rb 1).[0] * 256 + Char.code (rb 1).[0]) mod n
      in
      for _ = 1 to 300 do
        let m = Nat.add (Nat.random_bits ~random_bytes:rb (2 + rand_int 380)) Nat.one in
        let b1 = Nat.random_bits ~random_bytes:rb (1 + rand_int 400) in
        let b2 = Nat.random_bits ~random_bytes:rb (1 + rand_int 400) in
        let e1 = Nat.random_bits ~random_bytes:rb (rand_int 300) in
        let e2 = Nat.random_bits ~random_bytes:rb (rand_int 300) in
        Alcotest.check nat "powmod vs barrett"
          (Nat.powmod_barrett b1 e1 m) (Nat.powmod b1 e1 m);
        Alcotest.check nat "powmod2 vs product"
          (Nat.rem (Nat.mul (Nat.powmod_barrett b1 e1 m) (Nat.powmod_barrett b2 e2 m)) m)
          (Nat.powmod2 b1 e1 b2 e2 m);
        let maxb = 1 + rand_int 320 in
        let tbl = Nat.Fixed_base.create ~base:b1 ~modulus:m ~max_bits:maxb in
        let e3 = Nat.random_bits ~random_bytes:rb (rand_int (maxb + 40)) in
        Alcotest.check nat "fixed-base vs powmod"
          (Nat.powmod_barrett b1 e3 m) (Nat.Fixed_base.pow tbl e3)
      done);

  Alcotest.test_case "Bigint.powmod2" `Quick (fun () ->
    let bi = Bigint.of_int in
    let m = bi 1009 in
    Alcotest.check bigint "values"
      (Bigint.erem (Bigint.mul (Bigint.powmod (bi 17) (bi 100) m)
                      (Bigint.powmod (bi 23) (bi 77) m)) m)
      (Bigint.powmod2 (bi 17) (bi 100) (bi 23) (bi 77) m);
    (* negative bases enter via the euclidean remainder *)
    Alcotest.check bigint "negative base"
      (Bigint.powmod2 (Bigint.erem (bi (-17)) m) (bi 3) (bi 23) (bi 5) m)
      (Bigint.powmod2 (bi (-17)) (bi 3) (bi 23) (bi 5) m);
    Alcotest.check_raises "negative exponent"
      (Invalid_argument "Bigint.powmod2: negative exponent; invert the base instead")
      (fun () -> ignore (Bigint.powmod2 (bi 2) (bi (-1)) (bi 3) (bi 1) m)));
]

let suite = unit_tests @ property_tests @ fastpath_tests
