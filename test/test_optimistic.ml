(* Tests for the optimistic atomic broadcast extension. *)

open Sintra

let make ?(timeout = 1.5) ?(n = 4) (c : Cluster.t) =
  let logs = Array.init n (fun _ -> ref []) in
  let chans =
    Array.init n (fun i ->
      Optimistic_channel.create ~timeout (Cluster.runtime c i) ~pid:"opt"
        ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
  in
  (chans, logs)

let sequences logs = Array.map (fun l -> List.rev !l) logs

let suite = [
  Alcotest.test_case "honest leader: total order on the fast path" `Quick (fun () ->
    let c = Util.cluster ~seed:"opt-fast" () in
    let chans, logs = make c in
    for i = 0 to 3 do
      for k = 0 to 3 do
        Cluster.inject c i (fun () ->
          Optimistic_channel.send chans.(i) (Printf.sprintf "m%d.%d" i k))
      done
    done;
    ignore (Cluster.run c ~until:120.0);
    let seqs = sequences logs in
    Util.check_all_equal "total order" (Array.to_list seqs);
    Alcotest.(check int) "all 16" 16 (List.length seqs.(0));
    Alcotest.(check int) "no duplicates" 16 (List.length (List.sort_uniq compare seqs.(0)));
    Alcotest.(check int) "still epoch 0" 0 (Optimistic_channel.current_epoch chans.(0));
    Alcotest.(check int) "all fast" 16 (Optimistic_channel.deliveries_fast chans.(0));
    Alcotest.(check int) "none recovered" 0
      (Optimistic_channel.deliveries_recovered chans.(0)));

  Alcotest.test_case "fast path is much faster than the randomized channel" `Quick
    (fun () ->
      (* Same workload on both channels; the optimistic one should deliver
         in a small fraction of the virtual time (the paper's motivation
         for the optimistic protocols).  The baseline is the sequential
         randomized channel ([pipeline_depth 1]), as in the paper — round
         pipelining narrows the gap without changing the argument. *)
      let elapsed ?pipeline_depth make_chan send =
        let c = Util.cluster ~seed:"opt-vs" ?pipeline_depth () in
        let done_at = ref 0.0 in
        let count = ref 0 in
        let chans =
          Array.init 4 (fun i ->
            make_chan (Cluster.runtime c i) (fun () ->
              incr count;
              if !count = 10 then done_at := Cluster.now c))
        in
        for k = 0 to 9 do
          Cluster.inject c 1 (fun () -> send chans.(1) (Printf.sprintf "w%d" k))
        done;
        ignore (Cluster.run c ~until:300.0);
        if !count < 10 then Alcotest.fail "did not deliver the workload";
        !done_at
      in
      let t_opt =
        elapsed ~pipeline_depth:1
          (fun rt cb ->
            Optimistic_channel.create ~timeout:5.0 rt ~pid:"x"
              ~on_deliver:(fun ~sender:_ _ -> cb ()) ())
          Optimistic_channel.send
      in
      let t_full =
        elapsed ~pipeline_depth:1
          (fun rt cb ->
            `A (Atomic_channel.create rt ~pid:"x"
                  ~on_deliver:(fun ~sender:_ _ -> cb ()) ()))
          (fun (`A ch) m -> Atomic_channel.send ch m)
      in
      if t_opt *. 2.0 >= t_full then
        Alcotest.failf "optimistic %.3fs not clearly faster than full %.3fs" t_opt t_full);

  Alcotest.test_case "crashed leader: epoch change and progress" `Quick (fun () ->
    let c = Util.cluster ~seed:"opt-crash" () in
    let chans, logs = make ~timeout:1.0 c in
    Cluster.crash c 0;   (* epoch-0 leader *)
    for k = 0 to 3 do
      Cluster.inject c 2 (fun () ->
        Optimistic_channel.send chans.(2) (Printf.sprintf "x%d" k))
    done;
    ignore (Cluster.run c ~until:300.0);
    let seqs = sequences logs in
    Util.check_all_equal "live parties agree" [ seqs.(1); seqs.(2); seqs.(3) ];
    Alcotest.(check int) "all delivered" 4 (List.length seqs.(1));
    Alcotest.(check bool) "epoch advanced" true
      (Optimistic_channel.current_epoch chans.(1) >= 1);
    Alcotest.(check int) "new leader"
      (Optimistic_channel.current_epoch chans.(1) mod 4)
      (Optimistic_channel.current_leader chans.(1)));

  Alcotest.test_case "leader crash mid-stream loses nothing" `Quick (fun () ->
    let c = Util.cluster ~seed:"opt-mid" () in
    let chans, logs = make ~timeout:1.0 c in
    for k = 0 to 2 do
      Cluster.inject c 1 (fun () ->
        Optimistic_channel.send chans.(1) (Printf.sprintf "pre%d" k))
    done;
    Cluster.at c ~time:0.5 (fun () -> Cluster.crash c 0);
    Cluster.at c ~time:0.6 (fun () ->
      Cluster.inject c 2 (fun () -> Optimistic_channel.send chans.(2) "post0"));
    ignore (Cluster.run c ~until:300.0);
    let seqs = sequences logs in
    Util.check_all_equal "agree" [ seqs.(1); seqs.(2); seqs.(3) ];
    let payloads = List.map snd seqs.(1) in
    List.iter
      (fun m ->
        if not (List.mem m payloads) then Alcotest.failf "lost message %s" m)
      [ "pre0"; "pre1"; "pre2"; "post0" ];
    Alcotest.(check int) "exactly once" (List.length payloads)
      (List.length (List.sort_uniq compare payloads)));

  Alcotest.test_case "censoring leader is deposed" `Quick (fun () ->
    (* The epoch-0 leader (party 0) drops every message from party 3, so
       party 3's requests never get ordered in epoch 0; complaints rotate
       the leader and the censored messages get through. *)
    let c = Util.cluster ~seed:"opt-censor" () in
    let chans, logs = make ~timeout:1.0 c in
    Cluster.set_intercept c (fun ~src ~dst _ ->
      if src = 3 && dst = 0 then Sim.Net.Drop else Sim.Net.Deliver);
    Cluster.inject c 3 (fun () -> Optimistic_channel.send chans.(3) "censored!");
    ignore (Cluster.run c ~until:300.0);
    let seqs = sequences logs in
    Util.check_all_equal "agree" (Array.to_list seqs);
    Alcotest.(check bool) "censored message delivered" true
      (List.mem (3, "censored!") seqs.(0));
    Alcotest.(check bool) "epoch advanced" true
      (Optimistic_channel.current_epoch chans.(1) >= 1));

  Alcotest.test_case "back-to-back leader failures (n=7, t=2)" `Slow (fun () ->
    (* Leaders of epochs 0 and 1 both crash: two consecutive epoch changes
       are needed before the workload gets through. *)
    let c = Util.cluster ~seed:"opt-two" ~n:7 ~t:2 () in
    let chans, logs = make ~timeout:1.0 ~n:7 c in
    Cluster.crash c 0;
    Cluster.crash c 1;
    Cluster.inject c 2 (fun () -> Optimistic_channel.send chans.(2) "survivor");
    ignore (Cluster.run c ~until:600.0);
    let seqs = sequences logs in
    Util.check_all_equal "agree" [ seqs.(2); seqs.(3); seqs.(4); seqs.(5); seqs.(6) ];
    Alcotest.(check bool) "delivered" true (List.mem (2, "survivor") seqs.(2));
    Alcotest.(check bool) "epoch >= 2" true
      (Optimistic_channel.current_epoch chans.(2) >= 2));

  Alcotest.test_case "traffic across an epoch change is delivered exactly once" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"opt-dup" () in
      let chans, logs = make ~timeout:0.8 c in
      (* sustained traffic while the leader dies *)
      for k = 0 to 7 do
        Cluster.at c ~time:(0.1 *. float_of_int k) (fun () ->
          Cluster.inject c 1 (fun () ->
            Optimistic_channel.send chans.(1) (Printf.sprintf "s%d" k)))
      done;
      Cluster.at c ~time:0.35 (fun () -> Cluster.crash c 0);
      ignore (Cluster.run c ~until:600.0);
      let seqs = sequences logs in
      Util.check_all_equal "agree" [ seqs.(1); seqs.(2); seqs.(3) ];
      let payloads = List.map snd seqs.(1) in
      Alcotest.(check int) "eight delivered" 8 (List.length payloads);
      Alcotest.(check int) "no duplicates" 8
        (List.length (List.sort_uniq compare payloads)));
]
