(* Tests for the sliding-window authenticated link (the paper's planned TCP
   replacement). *)

(* A lossy, reordering datagram channel between two endpoints, driven by
   the event engine. *)
let make_pair ~(seed : string) ~(loss : float) ~(reorder : float) =
  let engine = Sim.Engine.create ~seed () in
  let chaos = Hashes.Drbg.create ~seed:("chaos" ^ seed) in
  let a_delivered = ref [] and b_delivered = ref [] in
  let a = ref None and b = ref None in
  let transmit (dst : Sim.Swlink.endpoint option ref) frame =
    if Hashes.Drbg.float chaos 1.0 >= loss then begin
      let delay = 0.01 +. Hashes.Drbg.float chaos reorder in
      Sim.Engine.schedule engine ~delay (fun () ->
        match !dst with
        | Some ep -> Sim.Swlink.on_datagram ep frame
        | None -> ())
    end
  in
  a := Some (Sim.Swlink.create ~engine ~mac_key:"pair-key" ~rto:0.3
               ~out:(fun f -> transmit b f)
               ~deliver:(fun p -> a_delivered := p :: !a_delivered) ());
  b := Some (Sim.Swlink.create ~engine ~mac_key:"pair-key" ~rto:0.3
               ~out:(fun f -> transmit a f)
               ~deliver:(fun p -> b_delivered := p :: !b_delivered) ());
  (engine, Option.get !a, Option.get !b, a_delivered, b_delivered)

let workload n = List.init n (fun i -> Printf.sprintf "payload-%04d" i)

let suite = [
  Alcotest.test_case "lossless: exactly-once in-order" `Quick (fun () ->
    let engine, a, _b, _ad, bd = make_pair ~seed:"sw1" ~loss:0.0 ~reorder:0.0 in
    List.iter (Sim.Swlink.send a) (workload 100);
    ignore (Sim.Engine.run engine);
    Alcotest.(check (list string)) "in order" (workload 100) (List.rev !bd);
    Alcotest.(check int) "no retransmissions" 0 (Sim.Swlink.retransmissions a));

  Alcotest.test_case "20% loss: still exactly-once in-order" `Quick (fun () ->
    let engine, a, _b, _ad, bd = make_pair ~seed:"sw2" ~loss:0.2 ~reorder:0.0 in
    List.iter (Sim.Swlink.send a) (workload 200);
    ignore (Sim.Engine.run engine);
    Alcotest.(check (list string)) "in order" (workload 200) (List.rev !bd);
    Alcotest.(check bool) "loss forced retransmissions" true
      (Sim.Swlink.retransmissions a > 0));

  Alcotest.test_case "loss + heavy reordering: still exactly-once in-order" `Quick
    (fun () ->
      let engine, a, _b, _ad, bd = make_pair ~seed:"sw3" ~loss:0.15 ~reorder:0.4 in
      List.iter (Sim.Swlink.send a) (workload 150);
      ignore (Sim.Engine.run engine);
      Alcotest.(check (list string)) "in order" (workload 150) (List.rev !bd));

  Alcotest.test_case "both directions at once" `Quick (fun () ->
    let engine, a, b, ad, bd = make_pair ~seed:"sw4" ~loss:0.1 ~reorder:0.1 in
    List.iter (Sim.Swlink.send a) (workload 60);
    List.iter (fun p -> Sim.Swlink.send b ("r:" ^ p)) (workload 60);
    ignore (Sim.Engine.run engine);
    Alcotest.(check (list string)) "a->b" (workload 60) (List.rev !bd);
    Alcotest.(check (list string)) "b->a"
      (List.map (fun p -> "r:" ^ p) (workload 60)) (List.rev !ad));

  Alcotest.test_case "window bounds frames in flight" `Quick (fun () ->
    let engine = Sim.Engine.create ~seed:"sw5" () in
    (* a black-hole link: nothing is ever delivered *)
    let a =
      Sim.Swlink.create ~engine ~mac_key:"k" ~window:8 ~rto:1000.0
        ~out:(fun _ -> ()) ~deliver:(fun _ -> ()) ()
    in
    List.iter (Sim.Swlink.send a) (workload 50);
    Alcotest.(check int) "in flight = window" 8 (Sim.Swlink.in_flight a);
    Alcotest.(check int) "rest queued" 42 (Sim.Swlink.backlog_length a));

  Alcotest.test_case "forged acknowledgements are rejected (the TCP DoS)" `Quick
    (fun () ->
      (* The attack the paper describes: an attacker spoofs ACKs so the
         sender discards unacknowledged data.  With authenticated ACKs the
         forged frames are dropped and the data still arrives after the
         real (delayed) delivery. *)
      let engine = Sim.Engine.create ~seed:"sw6" () in
      let delivered = ref [] in
      let b_ref = ref None in
      let a_ref = ref None in
      let a_out frame =
        (* the attacker sees traffic and immediately spoofs a big ACK... *)
        Sim.Engine.schedule engine ~delay:0.001 (fun () ->
          match !a_ref with
          | Some a ->
            let forged =
              Wire.encode (fun buf ->
                Wire.Enc.u8 buf 1;
                Wire.Enc.int buf 1000;
                Wire.Enc.bytes buf (String.make 20 '\000'))
            in
            Sim.Swlink.on_datagram a forged
          | None -> ());
        (* ...while the genuine frame is delivered slowly *)
        Sim.Engine.schedule engine ~delay:0.2 (fun () ->
          match !b_ref with
          | Some b -> Sim.Swlink.on_datagram b frame
          | None -> ())
      in
      let b_out frame =
        Sim.Engine.schedule engine ~delay:0.2 (fun () ->
          match !a_ref with
          | Some a -> Sim.Swlink.on_datagram a frame
          | None -> ())
      in
      a_ref := Some (Sim.Swlink.create ~engine ~mac_key:"secret" ~rto:0.5
                       ~out:a_out ~deliver:(fun _ -> ()) ());
      b_ref := Some (Sim.Swlink.create ~engine ~mac_key:"secret" ~rto:0.5
                       ~out:b_out ~deliver:(fun p -> delivered := p :: !delivered) ());
      let a = Option.get !a_ref in
      List.iter (Sim.Swlink.send a) (workload 20);
      ignore (Sim.Engine.run engine ~until:60.0);
      Alcotest.(check (list string)) "all delivered despite spoofing"
        (workload 20) (List.rev !delivered);
      Alcotest.(check bool) "forgeries were rejected" true
        (Sim.Swlink.rejected_frames a > 0));

  Alcotest.test_case "corrupted data frames are rejected" `Quick (fun () ->
    let engine = Sim.Engine.create ~seed:"sw7" () in
    let delivered = ref [] in
    let b_ref = ref None in
    let a_ref = ref None in
    let flip frame =
      let bytes = Bytes.of_string frame in
      if Bytes.length bytes > 3 then
        Bytes.set bytes 3 (Char.chr (Char.code (Bytes.get bytes 3) lxor 0xff));
      Bytes.to_string bytes
    in
    let count = ref 0 in
    let a_out frame =
      incr count;
      (* corrupt every third frame in flight *)
      let frame = if !count mod 3 = 0 then flip frame else frame in
      Sim.Engine.schedule engine ~delay:0.05 (fun () ->
        match !b_ref with Some b -> Sim.Swlink.on_datagram b frame | None -> ())
    in
    let b_out frame =
      Sim.Engine.schedule engine ~delay:0.05 (fun () ->
        match !a_ref with Some a -> Sim.Swlink.on_datagram a frame | None -> ())
    in
    a_ref := Some (Sim.Swlink.create ~engine ~mac_key:"k" ~rto:0.3
                     ~out:a_out ~deliver:(fun _ -> ()) ());
    b_ref := Some (Sim.Swlink.create ~engine ~mac_key:"k" ~rto:0.3
                     ~out:b_out ~deliver:(fun p -> delivered := p :: !delivered) ());
    List.iter (Sim.Swlink.send (Option.get !a_ref)) (workload 30);
    ignore (Sim.Engine.run engine ~until:60.0);
    Alcotest.(check (list string)) "intact stream" (workload 30) (List.rev !delivered);
    Alcotest.(check bool) "corruption detected" true
      (Sim.Swlink.rejected_frames (Option.get !b_ref) > 0));
]
