(* System-level tests: the dealer, configuration rules, scheme
   interchangeability (Shoup vs multi-signatures), adversarial scheduling,
   larger groups, and end-to-end determinism. *)

open Sintra

let suite = [
  (* --- configuration --- *)

  Alcotest.test_case "config rejects n <= 3t" `Quick (fun () ->
    Alcotest.check_raises "n=3 t=1" (Invalid_argument "Config: need n > 3t")
      (fun () -> ignore (Config.make ~n:3 ~t:1 ()));
    Alcotest.check_raises "n=6 t=2" (Invalid_argument "Config: need n > 3t")
      (fun () -> ignore (Config.make ~n:6 ~t:2 ()));
    ignore (Config.make ~n:7 ~t:2 ()));

  Alcotest.test_case "config rejects infeasible batch sizes" `Quick (fun () ->
    Alcotest.check_raises "B > n-t"
      (Invalid_argument "Config: batch size must satisfy 1 <= B <= n - t")
      (fun () -> ignore (Config.make ~batch_size:4 ~n:4 ~t:1 ()));
    ignore (Config.make ~batch_size:3 ~n:4 ~t:1 ()));

  Alcotest.test_case "quorum arithmetic" `Quick (fun () ->
    let check ~n ~t ~echo ~vote ~ready =
      let c = Config.make ~n ~t () in
      Alcotest.(check int) "echo" echo (Config.echo_quorum c);
      Alcotest.(check int) "vote" vote (Config.vote_quorum c);
      Alcotest.(check int) "ready" ready (Config.ready_quorum c);
      Alcotest.(check int) "coin" (t + 1) (Config.coin_threshold c)
    in
    check ~n:4 ~t:1 ~echo:3 ~vote:3 ~ready:3;
    check ~n:7 ~t:2 ~echo:5 ~vote:5 ~ready:5;
    check ~n:10 ~t:3 ~echo:7 ~vote:7 ~ready:7;
    check ~n:5 ~t:1 ~echo:4 ~vote:4 ~ready:3);

  (* --- the dealer --- *)

  Alcotest.test_case "dealer is deterministic in its seed" `Quick (fun () ->
    let cfg = Config.test () in
    let d1 = Dealer.deal ~seed:"alpha" cfg in
    let d2 = Dealer.deal ~seed:"alpha" cfg in
    let d3 = Dealer.deal ~seed:"beta" cfg in
    Alcotest.(check bool) "same seed same macs" true (d1.Dealer.mac_keys = d2.Dealer.mac_keys);
    Alcotest.(check bool) "same group" true
      (Bignum.Nat.equal d1.Dealer.group.Crypto.Group.p d2.Dealer.group.Crypto.Group.p);
    Alcotest.(check bool) "different seed different macs" true
      (d1.Dealer.mac_keys <> d3.Dealer.mac_keys));

  Alcotest.test_case "dealer wires the right thresholds" `Quick (fun () ->
    let cfg = Config.test ~n:7 ~t:2 () in
    let d = Dealer.deal ~seed:"thresholds" cfg in
    Alcotest.(check int) "coin k" 3 d.Dealer.coin_pub.Crypto.Threshold_coin.k;
    Alcotest.(check int) "bc tsig k" (Config.echo_quorum cfg) (Tsig.k d.Dealer.bc_tsig_pub);
    Alcotest.(check int) "ag tsig k" (Config.vote_quorum cfg) (Tsig.k d.Dealer.ag_tsig_pub);
    Alcotest.(check int) "enc k" 3 d.Dealer.enc_pub.Crypto.Threshold_enc.k;
    Alcotest.(check int) "parties" 7 (Array.length d.Dealer.parties));

  Alcotest.test_case "dealer mac matrix is symmetric and per-pair" `Quick (fun () ->
    let cfg = Config.test () in
    let d = Dealer.deal ~seed:"macs" cfg in
    let m = Dealer.net_mac_keys d in
    for i = 0 to 3 do
      for j = 0 to 3 do
        Alcotest.(check string) "sym" m.(i).(j) m.(j).(i);
        Alcotest.(check int) "128-bit" 16 (String.length m.(i).(j))
      done
    done;
    Alcotest.(check bool) "distinct pairs" true (m.(0).(1) <> m.(0).(2)));

  (* --- scheme interchangeability (the paper's multi-signature claim) --- *)

  Alcotest.test_case "consistent broadcast works with Shoup threshold sigs" `Quick
    (fun () ->
      let c = Util.cluster ~seed:"shoup-cbc" ~tsig_scheme:Config.Shoup () in
      let got = Array.make 4 None in
      let insts =
        Array.init 4 (fun i ->
          Consistent_broadcast.create (Cluster.runtime c i) ~pid:"sc" ~sender:0
            ~on_deliver:(fun m -> got.(i) <- Some m))
      in
      Cluster.inject c 0 (fun () -> Consistent_broadcast.send insts.(0) "via shoup");
      ignore (Cluster.run c);
      Array.iter
        (fun g -> Alcotest.(check (option string)) "delivered" (Some "via shoup") g)
        got;
      (* the closing message's signature is a standard RSA signature here *)
      match Consistent_broadcast.get_closing insts.(1) with
      | None -> Alcotest.fail "no closing"
      | Some cl ->
        Alcotest.(check bool) "valid" true
          (Consistent_broadcast.closing_valid (Cluster.runtime c 2) ~pid:"sc" cl));

  Alcotest.test_case "binary agreement works with Shoup threshold sigs" `Slow (fun () ->
    let c = Util.cluster ~seed:"shoup-aba" ~tsig_scheme:Config.Shoup () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Binary_agreement.create (Cluster.runtime c i) ~pid:"aba"
          ~on_decide:(fun b _ -> decided.(i) <- Some b))
    in
    List.iteri
      (fun i v -> Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) v))
      [ true; false; false; true ];
    ignore (Cluster.run c);
    Array.iter (fun d -> if d = None then Alcotest.fail "undecided") decided;
    Util.check_all_equal "agreement" (Array.to_list decided));

  Alcotest.test_case "atomic channel works with Shoup threshold sigs" `Slow (fun () ->
    let c = Util.cluster ~seed:"shoup-abc" ~tsig_scheme:Config.Shoup () in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Atomic_channel.create (Cluster.runtime c i) ~pid:"abc"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    for k = 0 to 2 do
      Cluster.inject c 1 (fun () -> Atomic_channel.send chans.(1) (Printf.sprintf "s%d" k))
    done;
    ignore (Cluster.run c);
    let seqs = Array.map (fun l -> List.rev !l) logs in
    Util.check_all_equal "total order" (Array.to_list seqs);
    Alcotest.(check int) "all delivered" 3 (List.length seqs.(0)));

  (* --- adversarial scheduling --- *)

  Alcotest.test_case "agreement survives heavy adversarial delays" `Slow (fun () ->
    (* Delay every 5th message by several seconds: the protocol is
       asynchronous, so this must only slow it down. *)
    let c = Util.cluster ~seed:"delays" () in
    let counter = ref 0 in
    Cluster.set_intercept c (fun ~src:_ ~dst:_ _ ->
      incr counter;
      if !counter mod 5 = 0 then Sim.Net.Delay 3.0 else Sim.Net.Deliver);
    let decided = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Binary_agreement.create (Cluster.runtime c i) ~pid:"aba"
          ~on_decide:(fun b _ -> decided.(i) <- Some b))
    in
    List.iteri
      (fun i v -> Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) v))
      [ true; false; true; false ];
    ignore (Cluster.run c);
    Array.iter (fun d -> if d = None then Alcotest.fail "undecided under delays") decided;
    Util.check_all_equal "agreement" (Array.to_list decided));

  Alcotest.test_case "corrupted party's traffic can be dropped entirely" `Quick
    (fun () ->
      (* The adversary silences one party completely (equivalent to a crash
         from the network's viewpoint); everything still works. *)
      let c = Util.cluster ~seed:"silence" () in
      Cluster.set_intercept c (fun ~src ~dst:_ _ ->
        if src = 2 then Sim.Net.Drop else Sim.Net.Deliver);
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"abc"
            ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
      in
      Cluster.inject c 0 (fun () -> Atomic_channel.send chans.(0) "still works");
      ignore (Cluster.run c);
      List.iter
        (fun i ->
          Alcotest.(check (list (pair int string))) "delivered"
            [ (0, "still works") ] (List.rev !(logs.(i))))
        [ 0; 1; 3 ]);

  (* --- larger groups --- *)

  Alcotest.test_case "n=7 t=2 atomic channel with two crashes" `Slow (fun () ->
    let c = Util.cluster ~seed:"big" ~n:7 ~t:2 () in
    let logs = Array.init 7 (fun _ -> ref []) in
    let chans =
      Array.init 7 (fun i ->
        Atomic_channel.create (Cluster.runtime c i) ~pid:"abc"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    Cluster.crash c 5;
    Cluster.crash c 6;
    for i = 0 to 2 do
      for k = 0 to 1 do
        Cluster.inject c i (fun () ->
          Atomic_channel.send chans.(i) (Printf.sprintf "m%d.%d" i k))
      done
    done;
    ignore (Cluster.run c);
    let seqs = List.map (fun i -> List.rev !(logs.(i))) [ 0; 1; 2; 3; 4 ] in
    Util.check_all_equal "total order among live" seqs;
    Alcotest.(check int) "all delivered" 6 (List.length (List.hd seqs)));

  Alcotest.test_case "secure channel with a crashed party" `Quick (fun () ->
    let c = Util.cluster ~seed:"sec-crash" () in
    let logs = Array.init 4 (fun _ -> ref []) in
    let chans =
      Array.init 4 (fun i ->
        Secure_atomic_channel.create (Cluster.runtime c i) ~pid:"sac"
          ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
    in
    Cluster.crash c 3;
    Cluster.inject c 0 (fun () -> Secure_atomic_channel.send chans.(0) "classified");
    ignore (Cluster.run c);
    List.iter
      (fun i ->
        Alcotest.(check (list (pair int string))) "decrypted"
          [ (0, "classified") ] (List.rev !(logs.(i))))
      [ 0; 1; 2 ]);

  (* --- determinism --- *)

  Alcotest.test_case "identical seeds give identical runs" `Quick (fun () ->
    let trace seed =
      let c = Util.cluster ~seed () in
      let log = ref [] in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"abc"
            ~on_deliver:(fun ~sender m ->
              if i = 0 then
                log := Printf.sprintf "%.9f|%d|%s" (Cluster.now c) sender m :: !log)
            ())
      in
      for i = 0 to 2 do
        Cluster.inject c i (fun () -> Atomic_channel.send chans.(i) (string_of_int i))
      done;
      ignore (Cluster.run c);
      List.rev !log
    in
    Alcotest.(check (list string)) "bit-identical" (trace "det") (trace "det");
    Alcotest.(check bool) "seed matters" true (trace "det" <> trace "det2"));

  Alcotest.test_case "virtual CPU time is actually charged" `Quick (fun () ->
    let c = Util.cluster ~seed:"meter" () in
    let got = ref None in
    let insts =
      Array.init 4 (fun i ->
        Consistent_broadcast.create (Cluster.runtime c i) ~pid:"m" ~sender:0
          ~on_deliver:(fun m -> if i = 1 then got := Some m))
    in
    Cluster.inject c 0 (fun () -> Consistent_broadcast.send insts.(0) "x");
    ignore (Cluster.run c);
    Alcotest.(check (option string)) "delivered" (Some "x") !got;
    (* every party did real modeled crypto work *)
    for i = 0 to 3 do
      let meter = Sim.Net.meter c.Cluster.net i in
      if meter.Sim.Cost.total_ms <= 0.0 then
        Alcotest.failf "party %d charged no CPU" i
    done;
    Alcotest.(check bool) "clock advanced" true (Cluster.now c > 0.0));

  Alcotest.test_case "link MACs protect protocol traffic end-to-end" `Quick (fun () ->
    (* Replace a protocol message in flight: the MAC drops it and the
       broadcast still completes via the other parties. *)
    let c = Util.cluster ~seed:"mac-e2e" () in
    let tampered = ref 0 in
    Cluster.set_intercept c (fun ~src ~dst _ ->
      if src = 0 && dst = 2 && !tampered = 0 then begin
        incr tampered;
        Sim.Net.Replace "evil bytes"
      end
      else Sim.Net.Deliver);
    let got = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Reliable_broadcast.create (Cluster.runtime c i) ~pid:"r" ~sender:0
          ~on_deliver:(fun m -> got.(i) <- Some m))
    in
    Cluster.inject c 0 (fun () -> Reliable_broadcast.send insts.(0) "protected");
    ignore (Cluster.run c);
    Alcotest.(check int) "tampering happened" 1 !tampered;
    Alcotest.(check int) "mac caught it" 1 (Sim.Net.mac_failures c.Cluster.net);
    Array.iter
      (fun g -> Alcotest.(check (option string)) "delivered anyway" (Some "protected") g)
      got);
]

(* --- the full stack over lossy datagrams (the paper's planned TCP
   replacement carrying real protocol traffic) --- *)

let lossy_suite = [
  Alcotest.test_case "reliable broadcast over 10% frame loss" `Quick (fun () ->
    let cfg = Config.test () in
    let topo = Sim.Topology.uniform ~count:4 () in
    let c = Cluster.create ~seed:"lossy-rbc" ~loss:0.10 ~topo cfg in
    let got = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Reliable_broadcast.create (Cluster.runtime c i) ~pid:"lr" ~sender:0
          ~on_deliver:(fun m -> got.(i) <- Some m))
    in
    Cluster.inject c 0 (fun () -> Reliable_broadcast.send insts.(0) "through the storm");
    ignore (Cluster.run c ~until:120.0);
    Array.iter
      (fun g -> Alcotest.(check (option string)) "delivered" (Some "through the storm") g)
      got);

  Alcotest.test_case "atomic channel over 10% frame loss keeps total order" `Slow
    (fun () ->
      let cfg = Config.test () in
      let topo = Sim.Topology.uniform ~count:4 () in
      let c = Cluster.create ~seed:"lossy-abc" ~loss:0.10 ~topo cfg in
      let logs = Array.init 4 (fun _ -> ref []) in
      let chans =
        Array.init 4 (fun i ->
          Atomic_channel.create (Cluster.runtime c i) ~pid:"la"
            ~on_deliver:(fun ~sender m -> logs.(i) := (sender, m) :: !(logs.(i))) ())
      in
      for i = 0 to 2 do
        for k = 0 to 1 do
          Cluster.inject c i (fun () ->
            Atomic_channel.send chans.(i) (Printf.sprintf "l%d.%d" i k))
        done
      done;
      ignore (Cluster.run c ~until:600.0);
      let seqs = Array.map (fun l -> List.rev !l) logs in
      Util.check_all_equal "total order over loss" (Array.to_list seqs);
      Alcotest.(check int) "all six delivered" 6 (List.length seqs.(0)));

  Alcotest.test_case "binary agreement over 15% frame loss" `Slow (fun () ->
    let cfg = Config.test () in
    let topo = Sim.Topology.uniform ~count:4 () in
    let c = Cluster.create ~seed:"lossy-aba" ~loss:0.15 ~topo cfg in
    let decided = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Binary_agreement.create (Cluster.runtime c i) ~pid:"laba"
          ~on_decide:(fun b _ -> decided.(i) <- Some b))
    in
    List.iteri
      (fun i v -> Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) v))
      [ true; false; true; false ];
    ignore (Cluster.run c ~until:600.0);
    Array.iter (fun d -> if d = None then Alcotest.fail "undecided over loss") decided;
    Util.check_all_equal "agreement over loss" (Array.to_list decided));
]

let suite = suite @ lossy_suite
