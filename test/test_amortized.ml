(* The crypto-equivalence harness for the amortized verification layer.

   The amortization mechanisms — batch verification by random linear
   combination (Crypto.Batch), the bounded verified-share cache
   (Crypto.Share_cache behind the Verify seam), and coin pre-generation
   (Binary_agreement + Config.coin_pregen) — all claim the same contract:
   acceptance is EXACTLY that of the reference one-at-a-time verifiers,
   only the virtual-CPU charges move.  This suite proves it:

   - randomized accept/reject EQUIVALENCE (280 cases): the batched
     verdicts agree with the fast single verifiers, which agree with the
     plain reference twins, share by share, across mixed batches of honest
     and forged shares;
   - PLANTED-FORGERY soundness (220 cases): when a batch contains known
     forgeries, bisection names exactly their indices — Byzantine
     attribution is identical to the one-at-a-time path;
   - cache determinism: a seeded protocol run delivers byte-identical logs
     with the cache and batching on or off;
   - replay-after-GC: instance garbage collection evicts the instance's
     cache group, so replayed frames re-verify instead of resurrecting
     stale verification state, and capacity bounds memory;
   - cost-charge regressions: the charge model prices a k-batch strictly
     below k singles and a cache hit far below any verification;
   - coin pre-generation safety: ABA decides identically with pregen on or
     off across 50 seeds, including crash/rebuild mid-pregen. *)

open Crypto
open Sintra

let drbg = Util.drbg ~seed:"amortized-tests" ()

(* Shared fixtures (key generation dominates runtime). *)
let group =
  lazy (Group.generate ~drbg:(Hashes.Drbg.fork drbg "grp") ~pbits:256 ~qbits:96)

let tsig_keys =
  lazy (Threshold_sig.deal ~drbg:(Hashes.Drbg.fork drbg "tsig")
          ~modulus_bits:256 ~nparties:4 ~k:3 ~t:1 ())

let coin_keys =
  lazy (Threshold_coin.deal ~drbg:(Hashes.Drbg.fork drbg "coin")
          ~group:(Lazy.force group) ~n:4 ~k:2 ~t:1)

let tsig_ctx = "amort-tsig"
let tsig_msgs = Array.init 5 (Printf.sprintf "statement-%d")
let coin_names = Array.init 5 (Printf.sprintf "coin-%d")

(* Honest share pools, one release per (message, origin): mutations below
   recombine pool entries, so the multi-hundred-case sweeps pay 20 releases
   per scheme, not one per slot. *)
let tsig_pool =
  lazy
    (let keys = Lazy.force tsig_keys in
     let d = Hashes.Drbg.fork drbg "tsig-pool" in
     Array.map
       (fun msg ->
         Array.map
           (fun sk ->
             Threshold_sig.release ~drbg:d keys.Threshold_sig.public sk
               ~ctx:tsig_ctx msg)
           keys.Threshold_sig.shares)
       tsig_msgs)

let coin_pool =
  lazy
    (let keys = Lazy.force coin_keys in
     let d = Hashes.Drbg.fork drbg "coin-pool" in
     Array.map
       (fun name ->
         Array.map
           (fun sk ->
             Threshold_coin.release ~drbg:d keys.Threshold_coin.public sk
               ~name)
           keys.Threshold_coin.shares)
       coin_names)

(* Slot code -> concrete share for message/name index [m], origin slot [o].
   0 honest; the rest are forgeries that every verifier must reject:
   1 cross-statement (an honest proof about a different message), 2 origin
   relabel (checked against the wrong verification key), 3 proof response
   transplanted from another origin's share, 4 origin out of range. *)
let tsig_slot (pool : Threshold_sig.share array array) ~(m : int) ~(o : int)
    (code : int) : Threshold_sig.share =
  let nmsgs = Array.length pool and n = Array.length pool.(0) in
  let s = pool.(m).(o) in
  match code with
  | 0 -> s
  | 1 -> pool.((m + 1) mod nmsgs).(o)
  | 2 -> { s with Threshold_sig.origin = (s.Threshold_sig.origin mod n) + 1 }
  | 3 ->
    { s with
      Threshold_sig.proof_z = pool.(m).((o + 1) mod n).Threshold_sig.proof_z }
  | _ -> { s with Threshold_sig.origin = 0 }

let coin_slot (pool : Threshold_coin.share array array) ~(m : int) ~(o : int)
    (code : int) : Threshold_coin.share =
  let nnames = Array.length pool and n = Array.length pool.(0) in
  let s = pool.(m).(o) in
  match code with
  | 0 -> s
  | 1 -> pool.((m + 1) mod nnames).(o)
  | 2 -> { s with Threshold_coin.origin = (s.Threshold_coin.origin mod n) + 1 }
  | 3 -> { s with Threshold_coin.value = pool.(m).((o + 1) mod n).Threshold_coin.value }
  | _ -> { s with Threshold_coin.origin = 0 }

let ints (l : int list) : string = String.concat "," (List.map string_of_int l)

let bad_of_flags (valid : bool list) : int list =
  List.concat (List.mapi (fun i ok -> if ok then [] else [ i ]) valid)

let check_verdict ~(what : string) ~(expected_bad : int list)
    (v : Batch.verdict) : unit =
  let got = match v with Batch.All_valid -> [] | Batch.Invalid l -> l in
  if got <> expected_bad then
    Alcotest.failf "%s: batch named [%s], singles named [%s]" what (ints got)
      (ints expected_bad)

(* --- equivalence and planted-forgery sweeps --- *)

let equivalence_tests =
  [
    Alcotest.test_case
      "tsig batch equivalence: 110 randomized accept/reject cases" `Quick
      (fun () ->
        let pub = (Lazy.force tsig_keys).Threshold_sig.public in
        let pool = Lazy.force tsig_pool in
        let plans =
          Util.batch_plans ~drbg:(Hashes.Drbg.fork drbg "tsig-eq") ~cases:110
            ~max_size:6 ~mutations:4
        in
        List.iteri
          (fun case plan ->
            let m = case mod Array.length tsig_msgs in
            let msg = tsig_msgs.(m) in
            let shares =
              List.mapi
                (fun j code -> tsig_slot pool ~m ~o:((case + j) mod 4) code)
                plan
            in
            let fast =
              List.map (Threshold_sig.verify_share pub ~ctx:tsig_ctx msg) shares
            in
            let refr =
              List.map
                (Threshold_sig.verify_share_reference pub ~ctx:tsig_ctx msg)
                shares
            in
            if fast <> refr then
              Alcotest.failf
                "case %d: fast and reference single verifiers disagree" case;
            check_verdict
              ~what:(Printf.sprintf "tsig case %d" case)
              ~expected_bad:(bad_of_flags fast)
              (Batch.tsig_shares pub ~ctx:tsig_ctx msg shares))
          plans);

    Alcotest.test_case
      "coin batch equivalence: 110 randomized accept/reject cases" `Quick
      (fun () ->
        let pub = (Lazy.force coin_keys).Threshold_coin.public in
        let pool = Lazy.force coin_pool in
        let plans =
          Util.batch_plans ~drbg:(Hashes.Drbg.fork drbg "coin-eq") ~cases:110
            ~max_size:6 ~mutations:4
        in
        List.iteri
          (fun case plan ->
            let m = case mod Array.length coin_names in
            let name = coin_names.(m) in
            let shares =
              List.mapi
                (fun j code -> coin_slot pool ~m ~o:((case + j) mod 4) code)
                plan
            in
            let fast =
              List.map (Threshold_coin.verify_share pub ~name) shares
            in
            let refr =
              List.map (Threshold_coin.verify_share_reference pub ~name) shares
            in
            if fast <> refr then
              Alcotest.failf
                "case %d: fast and reference single verifiers disagree" case;
            check_verdict
              ~what:(Printf.sprintf "coin case %d" case)
              ~expected_bad:(bad_of_flags fast)
              (Batch.coin_shares pub ~name shares))
          plans);

    Alcotest.test_case
      "dleq batch equivalence (untrusted h1): 60 randomized cases" `Quick
      (fun () ->
        let grp = Lazy.force group in
        let d = Hashes.Drbg.fork drbg "dleq-eq" in
        let g2 = Group.hash_to_group grp "dleq-base" in
        let items =
          Array.init 8 (fun i ->
            let x = Group.random_exponent grp ~drbg:d in
            let h1 = Group.pow_g grp x and h2 = Group.pow grp g2 x in
            let ctx = Printf.sprintf "dleq-%d" i in
            let proof =
              Dleq.prove grp ~drbg:d ~ctx ~g1:grp.Group.g ~h1 ~g2 ~h2 ~x
            in
            (ctx, h1, h2, proof))
        in
        let plans =
          Util.batch_plans ~drbg:(Hashes.Drbg.fork drbg "dleq-plan") ~cases:60
            ~max_size:5 ~mutations:2
        in
        List.iteri
          (fun case plan ->
            let slots =
              List.mapi
                (fun j code ->
                  let ctx, h1, h2, proof = items.((case + j) mod 8) in
                  match code with
                  | 0 -> (ctx, h1, h2, proof)
                  | 1 ->
                    let _, _, _, p' = items.((case + j + 1) mod 8) in
                    (ctx, h1, h2, p')
                  | _ ->
                    let _, h1', _, _ = items.((case + j + 1) mod 8) in
                    (ctx, h1', h2, proof))
                plan
            in
            let fast =
              List.map
                (fun (ctx, h1, h2, proof) ->
                  Dleq.verify grp ~ctx ~g1:grp.Group.g ~h1 ~g2 ~h2 proof)
                slots
            in
            let refr =
              List.map
                (fun (ctx, h1, h2, proof) ->
                  Dleq.verify_reference grp ~ctx ~g1:grp.Group.g ~h1 ~g2 ~h2
                    proof)
                slots
            in
            if fast <> refr then
              Alcotest.failf
                "case %d: fast and reference single verifiers disagree" case;
            check_verdict
              ~what:(Printf.sprintf "dleq case %d" case)
              ~expected_bad:(bad_of_flags fast)
              (Batch.dleq grp ~g1:grp.Group.g ~g2 slots))
          plans);

    Alcotest.test_case
      "tsig planted forgeries: bisection names exact indices, 110 cases"
      `Quick (fun () ->
        let pub = (Lazy.force tsig_keys).Threshold_sig.public in
        let pool = Lazy.force tsig_pool in
        let plans =
          Util.planted_plans ~drbg:(Hashes.Drbg.fork drbg "tsig-forge")
            ~cases:110 ~max_size:6 ~mutations:4
        in
        List.iteri
          (fun case plan ->
            let m = case mod Array.length tsig_msgs in
            let msg = tsig_msgs.(m) in
            let shares =
              List.mapi
                (fun j code -> tsig_slot pool ~m ~o:((case + j) mod 4) code)
                plan
            in
            (* Generator soundness: every planted slot must really fail the
               single verifier, every honest slot must pass. *)
            List.iteri
              (fun j code ->
                let ok =
                  Threshold_sig.verify_share pub ~ctx:tsig_ctx msg
                    (List.nth shares j)
                in
                if ok <> (code = 0) then
                  Alcotest.failf "case %d slot %d: mutation %d not %s" case j
                    code
                    (if code = 0 then "accepted" else "rejected"))
              plan;
            let planted = bad_of_flags (List.map (fun c -> c = 0) plan) in
            check_verdict
              ~what:(Printf.sprintf "tsig forgery case %d" case)
              ~expected_bad:planted
              (Batch.tsig_shares pub ~ctx:tsig_ctx msg shares))
          plans);

    Alcotest.test_case
      "coin planted forgeries: bisection names exact indices, 110 cases"
      `Quick (fun () ->
        let pub = (Lazy.force coin_keys).Threshold_coin.public in
        let pool = Lazy.force coin_pool in
        let plans =
          Util.planted_plans ~drbg:(Hashes.Drbg.fork drbg "coin-forge")
            ~cases:110 ~max_size:6 ~mutations:4
        in
        List.iteri
          (fun case plan ->
            let m = case mod Array.length coin_names in
            let name = coin_names.(m) in
            let shares =
              List.mapi
                (fun j code -> coin_slot pool ~m ~o:((case + j) mod 4) code)
                plan
            in
            List.iteri
              (fun j code ->
                let ok = Threshold_coin.verify_share pub ~name (List.nth shares j) in
                if ok <> (code = 0) then
                  Alcotest.failf "case %d slot %d: mutation %d not %s" case j
                    code
                    (if code = 0 then "accepted" else "rejected"))
              plan;
            let planted = bad_of_flags (List.map (fun c -> c = 0) plan) in
            check_verdict
              ~what:(Printf.sprintf "coin forgery case %d" case)
              ~expected_bad:planted
              (Batch.coin_shares pub ~name shares))
          plans);
  ]

(* --- verified-share cache: bounds, eviction, replay-after-GC --- *)

let sha (s : string) : string = Hashes.Sha256.digest_list [ s ]

let cache_tests =
  [
    Alcotest.test_case "share cache: FIFO bound, idempotence, group eviction"
      `Quick (fun () ->
        let t = Share_cache.create ~cap:4 in
        for i = 1 to 6 do
          Share_cache.add t ~group:"g" ~scheme:"s" ~digest:(sha (string_of_int i))
            ~sender:i ~index:i;
          if Share_cache.size t > 4 then
            Alcotest.failf "cache exceeded its capacity at insert %d" i
        done;
        Alcotest.(check int) "at capacity" 4 (Share_cache.size t);
        (* FIFO: the two oldest entries made room for 5 and 6. *)
        Alcotest.(check bool) "entry 1 evicted" false
          (Share_cache.mem t ~scheme:"s" ~digest:(sha "1") ~sender:1 ~index:1);
        Alcotest.(check bool) "entry 2 evicted" false
          (Share_cache.mem t ~scheme:"s" ~digest:(sha "2") ~sender:2 ~index:2);
        Alcotest.(check bool) "entry 6 live" true
          (Share_cache.mem t ~scheme:"s" ~digest:(sha "6") ~sender:6 ~index:6);
        (* Idempotent re-insertion does not grow or evict. *)
        Share_cache.add t ~group:"g" ~scheme:"s" ~digest:(sha "6") ~sender:6
          ~index:6;
        Alcotest.(check int) "idempotent" 4 (Share_cache.size t);
        Share_cache.evict_group t "g";
        Alcotest.(check int) "group evicted" 0 (Share_cache.size t);
        Alcotest.(check bool) "no resurrection" false
          (Share_cache.mem t ~scheme:"s" ~digest:(sha "6") ~sender:6 ~index:6));

    Alcotest.test_case
      "replay after GC: eviction forces re-verification at the Verify seam"
      `Quick (fun () ->
        let c =
          Util.cluster ~seed:"amort-shoup" ~tsig_scheme:Config.Shoup ()
        in
        let rt = Cluster.runtime c 0 in
        let sec = rt.Runtime.keys.Dealer.bc_tsig in
        let pub = Tsig.public_of_secret sec in
        let pid = "gc-pid" and stmt = "gc-stmt" in
        Runtime.register rt ~pid (fun ~src:_ _ -> ());
        let sh = Tsig.release ~drbg:rt.Runtime.drbg sec ~ctx:pid stmt in
        let cache = rt.Runtime.cache in
        Alcotest.(check bool) "first verification" true
          (Verify.tsig_share rt ~pub ~ctx:pid stmt sh);
        Alcotest.(check int) "cached" 1 (Share_cache.size cache);
        Alcotest.(check bool) "replayed share accepted" true
          (Verify.tsig_share rt ~pub ~ctx:pid stmt sh);
        Alcotest.(check int) "replay was a cache hit" 1 (Share_cache.hits cache);
        (* Instance GC evicts the pid's cache group... *)
        Runtime.unregister rt ~pid;
        Alcotest.(check int) "GC evicted the group" 0 (Share_cache.size cache);
        (* ...so a frame replayed after GC re-verifies for real instead of
           resurrecting stale cache state. *)
        Alcotest.(check bool) "post-GC replay re-verifies" true
          (Verify.tsig_share rt ~pub ~ctx:pid stmt sh);
        Alcotest.(check int) "post-GC replay was a miss, not a hit" 1
          (Share_cache.hits cache);
        Alcotest.(check int) "re-verified share re-cached" 1
          (Share_cache.size cache));

    Alcotest.test_case
      "cache capacity bounds memory under a distinct-statement flood" `Quick
      (fun () ->
        let c =
          Util.cluster ~seed:"amort-cap" ~tsig_scheme:Config.Shoup
            ~share_cache_cap:8 ()
        in
        let rt = Cluster.runtime c 0 in
        let sec = rt.Runtime.keys.Dealer.bc_tsig in
        let pub = Tsig.public_of_secret sec in
        for i = 1 to 32 do
          let stmt = Printf.sprintf "flood-%d" i in
          let sh = Tsig.release ~drbg:rt.Runtime.drbg sec ~ctx:"flood" stmt in
          Alcotest.(check bool) "verified" true
            (Verify.tsig_share rt ~pub ~ctx:"flood" stmt sh);
          if Share_cache.size rt.Runtime.cache > 8 then
            Alcotest.failf "cache exceeded its capacity at statement %d" i
        done;
        Alcotest.(check int) "bounded at capacity" 8
          (Share_cache.size rt.Runtime.cache);
        (* The cache-size gauge tracks the same bound. *)
        let m = Trace.Ctx.metrics rt.Runtime.trace in
        match Trace.Metrics.find_counter m "p0/verify.cache_size" with
        | Some g -> Alcotest.(check (float 0.0)) "gauge" 8.0 (Trace.Metrics.value g)
        | None -> Alcotest.fail "verify.cache_size gauge never recorded");
  ]

(* --- delivery-log determinism and scenario cost regression --- *)

let counter_value (c : Cluster.t) (p : int) (name : string) : float =
  let m = Trace.Ctx.metrics (Cluster.runtime c p).Runtime.trace in
  match Trace.Metrics.find_counter m (Printf.sprintf "p%d/%s" p name) with
  | Some ctr -> Trace.Metrics.value ctr
  | None -> 0.0

let hist_count (c : Cluster.t) (p : int) (name : string) : int =
  let m = Trace.Ctx.metrics (Cluster.runtime c p).Runtime.trace in
  match Trace.Metrics.find_hist m (Printf.sprintf "p%d/%s" p name) with
  | Some h -> Trace.Metrics.hist_count h
  | None -> 0

type det_run = {
  logs : string list;  (* per party, ";"-joined delivery order *)
  cpu : float;         (* summed virtual-CPU charge over all parties *)
  batch_obs : int;     (* verify.batch_size observations, all parties *)
}

(* One seeded consistent-broadcast run under a replay storm: party 0
   broadcasts four payloads while every third frame is re-injected late.
   Per-origin delivery order is the protocol's own guarantee, so with a
   single origin the full log must be identical whatever the amortization
   flags — byte for byte. *)
let consistent_run ~(batch_verify : bool) ~(share_cache : bool) () : det_run =
  let c =
    Util.cluster ~seed:"amort-shoup" ~tsig_scheme:Config.Shoup
      ~check_invariants:true ~batch_verify ~share_cache ()
  in
  Faults.install c (Faults.replay_every 3 ~delay:0.7);
  let logs = Array.init 4 (fun _ -> ref []) in
  let chans =
    Array.init 4 (fun p ->
      Consistent_channel.create (Cluster.runtime c p) ~pid:"det"
        ~on_deliver:(fun ~sender m ->
          logs.(p) := Printf.sprintf "%d:%s" sender m :: !(logs.(p)))
        ())
  in
  List.iteri
    (fun j time ->
      let payload = Printf.sprintf "det.%d" j in
      let submit () =
        Cluster.inject c 0 (fun () -> Consistent_channel.send chans.(0) payload)
      in
      if time <= 0.0 then submit () else Cluster.at c ~time submit)
    [ 0.0; 0.6; 1.2; 1.8 ];
  ignore (Cluster.run c ~until:300.0);
  Alcotest.(check int) "quiesced" 0 (Sim.Engine.pending c.Cluster.engine);
  for p = 0 to 3 do
    match Invariant.flagged (Cluster.runtime c p).Runtime.inv with
    | [] -> ()
    | (off, why) :: _ ->
      Alcotest.failf "party %d flagged party %d in an honest run: %s" p off why
  done;
  let cpu = ref 0.0 and batch_obs = ref 0 in
  for p = 0 to 3 do
    cpu :=
      !cpu
      +. (Cluster.runtime c p).Runtime.charge.Charge.meter.Sim.Cost.total_ms;
    batch_obs := !batch_obs + hist_count c p "verify.batch_size"
  done;
  {
    logs =
      Array.to_list
        (Array.map (fun l -> String.concat ";" (List.rev !l)) logs);
    cpu = !cpu;
    batch_obs = !batch_obs;
  }

let determinism_tests =
  [
    Alcotest.test_case
      "delivery logs byte-identical across all amortization flag settings"
      `Quick (fun () ->
        let runs =
          List.map
            (fun (bv, sc) -> consistent_run ~batch_verify:bv ~share_cache:sc ())
            [ (true, true); (true, false); (false, true); (false, false) ]
        in
        (match runs with
         | base :: rest ->
           List.iter
             (fun l ->
               if String.length l = 0 then Alcotest.fail "empty delivery log")
             base.logs;
           List.iteri
             (fun i r ->
               if r.logs <> base.logs then
                 Alcotest.failf
                   "flag setting %d changed the delivery log:\n%s\nvs\n%s" i
                   (String.concat "\n" r.logs)
                   (String.concat "\n" base.logs))
             rest
         | [] -> assert false);
        (* The all-on run must actually have amortized something... *)
        let on = List.nth runs 0 and off = List.nth runs 3 in
        if on.batch_obs = 0 then
          Alcotest.fail "batch verification never engaged in the all-on run";
        (* ...and charging a batch below k singles must show up as strictly
           less total virtual CPU for the same outcome. *)
        if not (on.cpu < off.cpu) then
          Alcotest.failf
            "amortization did not reduce virtual CPU: %.3f ms on vs %.3f ms off"
            on.cpu off.cpu);
  ]

(* --- cost-charge regression: the charge model itself --- *)

let cost_tests =
  [
    Alcotest.test_case
      "charge model: k-batch strictly below k singles, hit below everything"
      `Quick (fun () ->
        let scratch cfg =
          { Charge.meter = Sim.Cost.create_meter ~exp_ms:100.0;
            cfg;
            trace = Trace.Ctx.null () }
        in
        let cost cfg f =
          let s = scratch cfg in
          f s;
          s.Charge.meter.Sim.Cost.total_ms
        in
        let shoup = Config.test ~n:4 ~t:1 ~tsig_scheme:Config.Shoup () in
        let multi = Config.test ~n:4 ~t:1 ~tsig_scheme:Config.Multi () in
        let tsig_single = cost shoup Charge.tsig_verify_share in
        let tsig_batch3 =
          cost shoup (fun s -> Charge.tsig_verify_share_batch s ~k:3)
        in
        if not (tsig_batch3 < 3.0 *. tsig_single) then
          Alcotest.failf "tsig batch of 3 (%.3f ms) not below 3 singles (%.3f ms)"
            tsig_batch3 (3.0 *. tsig_single);
        (* The batch still pays per share: the charge must grow with k. *)
        let tsig_batch1 =
          cost shoup (fun s -> Charge.tsig_verify_share_batch s ~k:1)
        in
        if not (tsig_batch3 > tsig_batch1) then
          Alcotest.failf
            "tsig batch charge not monotone in k: k=3 %.3f ms vs k=1 %.3f ms"
            tsig_batch3 tsig_batch1;
        (* Multi-signature shares have no combined equation: the batch
           charge must honestly equal k independent verifications. *)
        let multi_single = cost multi Charge.tsig_verify_share in
        let multi_batch3 =
          cost multi (fun s -> Charge.tsig_verify_share_batch s ~k:3)
        in
        Alcotest.(check (float 1e-9)) "multi batch = k singles"
          (3.0 *. multi_single) multi_batch3;
        let coin_single = cost shoup Charge.coin_verify_share in
        let coin_batch3 =
          cost shoup (fun s -> Charge.coin_verify_share_batch s ~k:3)
        in
        if not (coin_batch3 < 3.0 *. coin_single) then
          Alcotest.failf "coin batch of 3 (%.3f ms) not below 3 singles (%.3f ms)"
            coin_batch3 (3.0 *. coin_single);
        let hit = cost shoup Charge.cache_hit in
        if not (hit < tsig_single /. 10.0 && hit < coin_single /. 10.0) then
          Alcotest.failf "cache hit (%.6f ms) not far below a verification" hit);
  ]

(* --- coin pre-generation safety --- *)

(* One dealer for the whole sweep (key material is independent of both the
   run seed and the pregen flag); engines are seeded per run, as in the
   vopr workloads. *)
let aba_dealer =
  lazy (Dealer.deal ~seed:"amort-aba" (Config.test ~n:4 ~t:1 ()))

let pregen_cluster ~(coin_pregen : bool) ~(run_seed : string) : Cluster.t =
  let cfg = Config.test ~n:4 ~t:1 ~check_invariants:true ~coin_pregen () in
  let topo = Util.default_topo () in
  let dealer = Lazy.force aba_dealer in
  let engine = Sim.Engine.create ~seed:("engine|" ^ run_seed) () in
  let net =
    Sim.Net.create ~engine ~topo ~mac_keys:(Dealer.net_mac_keys dealer)
  in
  let runtimes =
    Array.init 4 (fun i ->
      Runtime.create ~engine ~net ~cfg ~keys:dealer.Dealer.parties.(i))
  in
  { Cluster.engine; net; cfg; dealer; runtimes }

(* Run one seeded ABA instance with mixed proposals; returns the per-party
   decisions and the summed cache-hit count (coin-share justifications
   repeat shares across votes, so the cache must engage). *)
let aba_decisions ~(coin_pregen : bool) ~(run_seed : string) :
    string array * float =
  let c = pregen_cluster ~coin_pregen ~run_seed in
  let decided = Array.make 4 None in
  let insts =
    Array.init 4 (fun i ->
      Binary_agreement.create (Cluster.runtime c i) ~pid:"aba"
        ~on_decide:(fun b _ -> decided.(i) <- Some b))
  in
  let d = Hashes.Drbg.create ~seed:("prop|" ^ run_seed) in
  (* Split proposals force coin rounds more often than not. *)
  let props = Array.init 4 (fun i -> i mod 2 = Hashes.Drbg.int d 2) in
  Array.iteri
    (fun i inst ->
      Cluster.inject c i (fun () -> Binary_agreement.propose inst props.(i)))
    insts;
  ignore (Cluster.run c ~until:300.0);
  Alcotest.(check int) "quiesced" 0 (Sim.Engine.pending c.Cluster.engine);
  let hits = ref 0.0 in
  for p = 0 to 3 do
    (match Invariant.flagged (Cluster.runtime c p).Runtime.inv with
     | [] -> ()
     | (off, why) :: _ ->
       Alcotest.failf "party %d flagged party %d in an honest run: %s" p off
         why);
    hits := !hits +. counter_value c p "verify.cache_hit"
  done;
  ( Array.map
      (function Some b -> string_of_bool b | None -> "undecided")
      decided,
    !hits )

(* Crash party 2 mid-run (while pre-generated coin shares sit in volatile
   round state), rebuild it through Runtime.on_rebuild, and return every
   party's final atomic delivery order. *)
let rebuild_logs ~(coin_pregen : bool) () : string list =
  let c = pregen_cluster ~coin_pregen ~run_seed:"amort-rebuild" in
  let logs = Array.init 4 (fun _ -> ref []) in
  let chans : Atomic_channel.t option array = Array.make 4 None in
  let make p =
    let rt = Cluster.runtime c p in
    chans.(p) <-
      Some
        (Atomic_channel.create rt ~pid:"pre"
           ~on_deliver:(fun ~sender m ->
             logs.(p) := Printf.sprintf "%d:%s" sender m :: !(logs.(p)))
           ())
  in
  for p = 0 to 3 do make p done;
  let rt2 = Cluster.runtime c 2 in
  Runtime.on_rebuild rt2 (fun () ->
    logs.(2) := [];
    make 2);
  let send p m =
    Cluster.inject c p (fun () ->
      match chans.(p) with
      | Some ch -> Atomic_channel.send ch m
      | None -> ())
  in
  for p = 0 to 3 do send p (Printf.sprintf "p%d.a" p) done;
  Cluster.at c ~time:0.5 (fun () -> Runtime.crash rt2);
  Cluster.at c ~time:3.0 (fun () -> Runtime.recover rt2);
  Cluster.at c ~time:4.0 (fun () ->
    send 0 "p0.b";
    send 1 "p1.b";
    send 3 "p3.b");
  Cluster.at c ~time:4.5 (fun () -> send 2 "p2.b");
  ignore (Cluster.run c ~until:300.0);
  Alcotest.(check int) "quiesced" 0 (Sim.Engine.pending c.Cluster.engine);
  Array.to_list (Array.map (fun l -> String.concat ";" (List.rev !l)) logs)

let pregen_tests =
  [
    Alcotest.test_case
      "coin pregen: ABA decides identically, pregen on vs off, 50 seeds"
      `Quick (fun () ->
        let hits = ref 0.0 in
        for s = 0 to 49 do
          let run_seed = Printf.sprintf "pregen-%d" s in
          let on, h_on = aba_decisions ~coin_pregen:true ~run_seed in
          let off, _ = aba_decisions ~coin_pregen:false ~run_seed in
          Array.iter
            (fun d ->
              if d = "undecided" then
                Alcotest.failf "seed %s: a party never decided" run_seed)
            on;
          if on <> off then
            Alcotest.failf "seed %s: pregen changed the decision: %s vs %s"
              run_seed
              (String.concat "," (Array.to_list on))
              (String.concat "," (Array.to_list off));
          hits := !hits +. h_on
        done;
        (* Coin-share justifications repeat shares across votes; the sweep
           as a whole must have exercised the verified-share cache. *)
        if !hits <= 0.0 then
          Alcotest.fail "verified-share cache never hit across the ABA sweep");

    Alcotest.test_case
      "coin pregen: crash/rebuild mid-pregen leaves the outcome unchanged"
      `Quick (fun () ->
        let on = rebuild_logs ~coin_pregen:true () in
        let off = rebuild_logs ~coin_pregen:false () in
        (* Total order holds within each run, including the rebuilt party. *)
        Util.check_all_equal "order with pregen on" on;
        Util.check_all_equal "order with pregen off" off;
        (* And pre-generation changes nothing about the outcome. *)
        if on <> off then
          Alcotest.failf
            "pregen changed the post-rebuild delivery order:\n%s\nvs\n%s"
            (String.concat "\n" on) (String.concat "\n" off));
  ]

let suite =
  equivalence_tests @ cache_tests @ determinism_tests @ cost_tests
  @ pregen_tests
