(* Tests for binary, validated and multi-valued Byzantine agreement. *)

open Sintra

let run_aba ?(seed = "aba") ?(n = 4) ?(crash = []) (proposals : bool list) :
    bool option array * Cluster.t =
  let c = Util.cluster ~seed ~n () in
  let decided = Array.make n None in
  let insts =
    Array.init n (fun i ->
      Binary_agreement.create (Cluster.runtime c i) ~pid:"aba"
        ~on_decide:(fun b _ -> decided.(i) <- Some b))
  in
  List.iter (Cluster.crash c) crash;
  List.iteri
    (fun i v ->
      if not (List.mem i crash) then
        Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) v))
    proposals;
  ignore (Cluster.run c);
  (decided, c)

let check_agreement_validity ?(crash = []) (proposals : bool list)
    (decided : bool option array) =
  let honest = List.filteri (fun i _ -> not (List.mem i crash)) (Array.to_list decided) in
  List.iteri
    (fun i d -> if d = None then Alcotest.failf "honest party %d did not decide" i)
    honest;
  Util.check_all_equal "agreement" honest;
  match honest with
  | Some v :: _ ->
    let honest_proposals = List.filteri (fun i _ -> not (List.mem i crash)) proposals in
    if not (List.mem v honest_proposals) then
      Alcotest.failf "decided %b which no honest party proposed" v
  | _ -> ()

let suite = [
  Alcotest.test_case "unanimous 1 decides 1" `Quick (fun () ->
    let d, _ = run_aba ~seed:"u1" [ true; true; true; true ] in
    Array.iter (fun x -> Alcotest.(check (option bool)) "one" (Some true) x) d);

  Alcotest.test_case "unanimous 0 decides 0" `Quick (fun () ->
    let d, _ = run_aba ~seed:"u0" [ false; false; false; false ] in
    Array.iter (fun x -> Alcotest.(check (option bool)) "zero" (Some false) x) d);

  Alcotest.test_case "mixed proposals agree" `Quick (fun () ->
    List.iteri
      (fun k props ->
        let d, _ = run_aba ~seed:(Printf.sprintf "mix%d" k) props in
        check_agreement_validity props d)
      [ [ true; false; true; false ];
        [ true; false; false; false ];
        [ false; true; true; true ] ]);

  Alcotest.test_case "agreement across many randomized runs" `Slow (fun () ->
    let d = Hashes.Drbg.create ~seed:"aba-fuzz" in
    for k = 0 to 9 do
      let props = List.init 4 (fun _ -> Hashes.Drbg.bool d) in
      let dec, _ = run_aba ~seed:(Printf.sprintf "fuzz%d" k) props in
      check_agreement_validity props dec
    done);

  Alcotest.test_case "tolerates one crashed party" `Quick (fun () ->
    let props = [ true; false; true; false ] in
    let d, _ = run_aba ~seed:"crash" ~crash:[ 3 ] props in
    check_agreement_validity ~crash:[ 3 ] props d);

  Alcotest.test_case "n=7 t=2 with two crashes" `Slow (fun () ->
    let props = [ true; false; true; false; true; false; true ] in
    let c = Util.cluster ~seed:"aba7" ~n:7 ~t:2 () in
    let decided = Array.make 7 None in
    let insts =
      Array.init 7 (fun i ->
        Binary_agreement.create (Cluster.runtime c i) ~pid:"aba"
          ~on_decide:(fun b _ -> decided.(i) <- Some b))
    in
    Cluster.crash c 5;
    Cluster.crash c 6;
    List.iteri
      (fun i v ->
        if i < 5 then Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) v))
      props;
    ignore (Cluster.run c);
    check_agreement_validity ~crash:[ 5; 6 ] props decided);

  Alcotest.test_case "double proposal rejected" `Quick (fun () ->
    let c = Util.cluster ~seed:"dbl" () in
    let inst =
      Binary_agreement.create (Cluster.runtime c 0) ~pid:"aba"
        ~on_decide:(fun _ _ -> ())
    in
    Binary_agreement.propose inst true;
    Alcotest.check_raises "double"
      (Invalid_argument "Binary_agreement.propose: already proposed")
      (fun () -> Binary_agreement.propose inst false));

  Alcotest.test_case "bias breaks a 2-2 split its way" `Quick (fun () ->
    (* With two proposals each way, neither bit can gather n-t unanimous
       pre-votes, so round 1 ends in abstain everywhere and the biased
       "coin" decides.  This is deterministic: the protocol must decide the
       bias value. *)
    List.iter
      (fun bias ->
        let c = Util.cluster ~seed:"bias" () in
        let decided = Array.make 4 None in
        let insts =
          Array.init 4 (fun i ->
            Binary_agreement.create ~bias (Cluster.runtime c i) ~pid:"aba"
              ~on_decide:(fun b _ -> decided.(i) <- Some b))
        in
        List.iteri
          (fun i v -> Cluster.inject c i (fun () -> Binary_agreement.propose insts.(i) v))
          [ true; true; false; false ];
        ignore (Cluster.run c);
        Array.iter
          (fun x -> Alcotest.(check (option bool)) "bias value" (Some bias) x)
          decided)
      [ true; false ]);

  Alcotest.test_case "validated agreement returns usable proof" `Quick (fun () ->
    let validator b proof = proof = "proof:" ^ string_of_bool b in
    let c = Util.cluster ~seed:"vba" () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Validated_agreement.create (Cluster.runtime c i) ~pid:"vba" ~validator
          ~on_decide:(fun b ~proof -> decided.(i) <- Some (b, proof)))
    in
    List.iteri
      (fun i v ->
        Cluster.inject c i (fun () ->
          Validated_agreement.propose insts.(i) v ~proof:("proof:" ^ string_of_bool v)))
      [ true; false; true; false ];
    ignore (Cluster.run c);
    Array.iter
      (fun x ->
        match x with
        | None -> Alcotest.fail "no decision"
        | Some (b, proof) ->
          Alcotest.(check bool) "proof validates decision" true (validator b proof))
      decided;
    Util.check_all_equal "agreement" (Array.to_list decided));

  Alcotest.test_case "invalid proposal rejected locally" `Quick (fun () ->
    let validator b proof = proof = "proof:" ^ string_of_bool b in
    let c = Util.cluster ~seed:"vba2" () in
    let inst =
      Validated_agreement.create (Cluster.runtime c 0) ~pid:"vba" ~validator
        ~on_decide:(fun _ ~proof:_ -> ())
    in
    Alcotest.check_raises "bad proof"
      (Invalid_argument "Binary_agreement.propose: proposal fails validation")
      (fun () -> Validated_agreement.propose inst true ~proof:"wrong"));

  Alcotest.test_case "byzantine prevote shares are ignored" `Quick (fun () ->
    (* Party 0 floods garbage and unjustified votes; the three honest
       parties still reach agreement on their common proposal. *)
    let c = Util.cluster ~seed:"byz-aba" () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 3 (fun k ->
        let i = k + 1 in
        Binary_agreement.create (Cluster.runtime c i) ~pid:"aba"
          ~on_decide:(fun b _ -> decided.(i) <- Some b))
    in
    Cluster.inject c 0 (fun () ->
      let rt = Cluster.runtime c 0 in
      for dst = 1 to 3 do
        (* raw garbage *)
        Runtime.send rt ~dst ~pid:"aba" "complete nonsense";
        (* a syntactically valid pre-vote whose share is for the wrong
           statement (claims value true but shares the false statement) *)
        let bogus_share =
          Tsig.release ~drbg:rt.Runtime.drbg rt.Runtime.keys.Dealer.ag_tsig
            ~ctx:"aba" "aba-pre|aba|1|false"
        in
        let body =
          Wire.encode (fun b ->
            Wire.Enc.u8 b 0;
            Wire.Enc.int b 1;
            Wire.Enc.bool b true;
            Tsig.enc_share b bogus_share;
            Wire.Enc.u8 b 0;
            Wire.Enc.option b Wire.Enc.bytes None)
        in
        Runtime.send rt ~dst ~pid:"aba" body
      done);
    Array.iteri
      (fun k inst ->
        Cluster.inject c (k + 1) (fun () -> Binary_agreement.propose inst false))
      insts;
    ignore (Cluster.run c);
    for i = 1 to 3 do
      Alcotest.(check (option bool)) "honest decide false" (Some false) decided.(i)
    done);

  (* --- multi-valued agreement --- *)

  Alcotest.test_case "mvba agrees on a proposed value" `Quick (fun () ->
    let c = Util.cluster ~seed:"mv1" () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Array_agreement.create (Cluster.runtime c i) ~pid:"mv"
          ~validator:(fun s -> String.length s > 0)
          ~on_decide:(fun v -> decided.(i) <- Some v))
    in
    let proposals = List.init 4 (fun i -> Printf.sprintf "proposal-%d" i) in
    List.iteri
      (fun i v -> Cluster.inject c i (fun () -> Array_agreement.propose insts.(i) v))
      proposals;
    ignore (Cluster.run c);
    Array.iter (fun d -> if d = None then Alcotest.fail "undecided") decided;
    Util.check_all_equal "agreement" (Array.to_list decided);
    match decided.(0) with
    | Some v -> Alcotest.(check bool) "validity" true (List.mem v proposals)
    | None -> assert false);

  Alcotest.test_case "mvba with random candidate order" `Quick (fun () ->
    let c = Util.cluster ~seed:"mv2" ~perm_mode:Config.Random_local () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Array_agreement.create (Cluster.runtime c i) ~pid:"mv-rand"
          ~validator:(fun _ -> true)
          ~on_decide:(fun v -> decided.(i) <- Some v))
    in
    List.iteri
      (fun i inst ->
        Cluster.inject c i (fun () -> Array_agreement.propose inst (string_of_int i)))
      (Array.to_list insts);
    ignore (Cluster.run c);
    Array.iter (fun d -> if d = None then Alcotest.fail "undecided") decided;
    Util.check_all_equal "agreement" (Array.to_list decided));

  Alcotest.test_case "mvba tolerates a crashed party" `Quick (fun () ->
    let c = Util.cluster ~seed:"mv3" () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Array_agreement.create (Cluster.runtime c i) ~pid:"mv"
          ~validator:(fun s -> String.length s > 0)
          ~on_decide:(fun v -> decided.(i) <- Some v))
    in
    Cluster.crash c 2;
    List.iteri
      (fun i inst ->
        if i <> 2 then
          Cluster.inject c i (fun () -> Array_agreement.propose inst (Printf.sprintf "p%d" i)))
      (Array.to_list insts);
    ignore (Cluster.run c);
    List.iter
      (fun i ->
        match decided.(i) with
        | None -> Alcotest.failf "party %d undecided" i
        | Some v -> Alcotest.(check bool) "valid" true (String.length v > 0))
      [ 0; 1; 3 ];
    Util.check_all_equal "agreement" [ decided.(0); decided.(1); decided.(3) ]);

  Alcotest.test_case "mvba never decides an invalid value" `Quick (fun () ->
    (* The validator only accepts values with prefix "ok:"; the corrupted
       party proposes something invalid, which can win no agreement. *)
    let validator s = String.length s >= 3 && String.sub s 0 3 = "ok:" in
    let c = Util.cluster ~seed:"mv4" () in
    let decided = Array.make 4 None in
    let insts =
      Array.init 4 (fun i ->
        Array_agreement.create (Cluster.runtime c i) ~pid:"mv"
          ~validator
          ~on_decide:(fun v -> decided.(i) <- Some v))
    in
    (* Party 0 is corrupted: it broadcasts an invalid proposal via its own
       VCBC instance directly (bypassing the local validation in propose). *)
    Cluster.inject c 0 (fun () ->
      Consistent_broadcast.send insts.(0).Array_agreement.vcbc.(0) "evil");
    List.iteri
      (fun i inst ->
        if i > 0 then
          Cluster.inject c i (fun () ->
            Array_agreement.propose inst (Printf.sprintf "ok:%d" i)))
      (Array.to_list insts);
    ignore (Cluster.run c);
    List.iter
      (fun i ->
        match decided.(i) with
        | None -> Alcotest.failf "party %d undecided" i
        | Some v -> Alcotest.(check bool) "validator accepts" true (validator v))
      [ 1; 2; 3 ]);

  Alcotest.test_case "mvba double propose rejected" `Quick (fun () ->
    let c = Util.cluster ~seed:"mv5" () in
    let inst =
      Array_agreement.create (Cluster.runtime c 0) ~pid:"mv"
        ~validator:(fun _ -> true) ~on_decide:(fun _ -> ())
    in
    Array_agreement.propose inst "a";
    Alcotest.check_raises "double"
      (Invalid_argument "Array_agreement.propose: already proposed")
      (fun () -> Array_agreement.propose inst "b"));
]
